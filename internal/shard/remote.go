package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"d3l"
	"d3l/internal/server"
)

// RemoteConfig tunes the coordinator's per-shard HTTP behavior. The
// zero value of any field selects the documented default.
type RemoteConfig struct {
	// ShardTimeout bounds each HTTP attempt to one shard replica.
	// 0 selects 10s.
	ShardTimeout time.Duration
	// Retries is how many extra attempts a failed read-path call gets
	// (probe, gather, explain — mutations never retry: they are not
	// idempotent across the mirror fan-out). Negative means 0.
	// 0 selects 1.
	Retries int
	// HedgeAfter, when positive, launches a duplicate attempt against
	// the same replica if the first has not answered within this
	// duration — the classic tail-latency hedge. The first answer
	// wins. 0 disables hedging.
	HedgeAfter time.Duration
	// Client overrides the HTTP client (tests inject httptest
	// transports). nil builds a pooled default.
	Client *http.Client
}

func (c RemoteConfig) withDefaults() RemoteConfig {
	if c.ShardTimeout == 0 {
		c.ShardTimeout = 10 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 1
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.Client == nil {
		c.Client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 16,
			},
		}
	}
	return c
}

// Remote is the thin-coordinator backend: it implements the
// server.Engine surface by fanning the scatter-gather protocol out
// over HTTP to remote shard replicas (each a plain `d3l serve`
// process). Wrapped in server.New, it inherits the serving layer's
// result cache, admission gate and single-flight coalescing — the
// coordinator itself holds no index data.
//
// Failure policy: fail-closed by default — any shard failure (after
// retries/hedging) fails the query, because a silent subset answer
// would break the byte-identity contract. A query carrying
// d3l.WithPartialResults (the HTTP layer's ?partial=true) instead
// drops unreachable shards and marks the answer Degraded; degraded
// answers carry no exactness guarantee.
type Remote struct {
	urls   []string
	place  *Placement
	cfg    RemoteConfig
	baseFP uint64
	// muts counts coordinator-applied mutations; it folds into
	// Fingerprint so the serving cache invalidates on every mutation
	// routed through this coordinator. Out-of-band replica changes
	// are surfaced by POST /v1/reload, whose LoadFunc re-polls the
	// replicas into a fresh Remote (fresh baseFP).
	muts atomic.Uint64
}

// NewRemote builds a coordinator backend over the given replica base
// URLs (one per shard ordinal, matching the manifest the replicas
// were built from). Construction is fail-closed: every replica must
// answer /v1/healthz, and the fingerprints seed the coordinator's
// cache identity.
func NewRemote(urls []string, cfg RemoteConfig) (*Remote, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("shard: coordinator needs at least 1 shard URL")
	}
	place, err := NewPlacement(len(urls), 0)
	if err != nil {
		return nil, err
	}
	r := &Remote{
		urls:  make([]string, len(urls)),
		place: place,
		cfg:   cfg.withDefaults(),
	}
	for i, u := range urls {
		r.urls[i] = strings.TrimRight(u, "/")
	}
	const prime = 1099511628211
	fp := uint64(14695981039346656037)
	fp = (fp ^ uint64(len(urls))) * prime
	for i := range r.urls {
		ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ShardTimeout)
		var h server.HealthResponse
		err := r.getJSON(ctx, i, "/v1/healthz", &h)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("shard %d (%s): health check: %w", i, r.urls[i], err)
		}
		sfp, err := strconv.ParseUint(h.EngineFingerprint, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("shard %d (%s): bad fingerprint %q", i, r.urls[i], h.EngineFingerprint)
		}
		fp = (fp ^ sfp) * prime
	}
	r.baseFP = fp
	return r, nil
}

// NumShards reports the replica count.
func (r *Remote) NumShards() int { return len(r.urls) }

// URLs exposes the replica base URLs (CLI diagnostics).
func (r *Remote) URLs() []string { return append([]string(nil), r.urls...) }

// ---- server.Engine: queries ----

// Query answers one discovery query by scatter-gather over the
// replicas, replicating the monolith contract (see Set.Query).
func (r *Remote) Query(ctx context.Context, target *d3l.Table, opts ...d3l.QueryOption) (*d3l.Answer, error) {
	sq, err := d3l.ResolveShardQuery(opts...)
	if err != nil {
		return nil, err
	}
	if target == nil {
		return nil, fmt.Errorf("d3l: nil target")
	}
	return r.query(ctx, target, sq)
}

func (r *Remote) query(ctx context.Context, target *d3l.Table, sq *d3l.ShardQuery) (*d3l.Answer, error) {
	start := time.Now()
	wire := tableToWire(target)
	ans := &d3l.Answer{Stats: d3l.QueryStats{K: sq.K}}
	if sq.K > 0 {
		results, stats, degraded, err := r.search(ctx, wire, sq)
		if err != nil {
			return nil, err
		}
		ans.Results = results
		ans.Stats.CandidatePairs = stats.CandidatePairs
		ans.Stats.TablesScored = stats.TablesScored
		ans.Degraded = degraded
	}
	if sq.ExplainFor != "" {
		rows, err := r.explain(ctx, wire, sq)
		if err != nil {
			return nil, err
		}
		ans.Explanation = rows
	}
	ans.Stats.Elapsed = time.Since(start)
	return ans, nil
}

// search runs the two HTTP phases. Under PartialOK a shard that fails
// its probe (after retries) is dropped from the query entirely; a
// shard that probed but fails its gather is likewise dropped. Either
// drop degrades the answer. With no live shard left the query fails
// even under PartialOK.
func (r *Remote) search(ctx context.Context, wire server.TableJSON, sq *d3l.ShardQuery) ([]d3l.Result, d3l.QueryStats, bool, error) {
	n := len(r.urls)
	probes := make([]*d3l.ShardProbe, n)
	probeErrs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var p d3l.ShardProbe
			err := r.readJSON(ctx, i, "/v1/shard/probe", server.ShardProbeRequest{Table: wire, Spec: sq.Spec}, &p)
			if err != nil {
				probeErrs[i] = err
				return
			}
			probes[i] = &p
		}(i)
	}
	wg.Wait()
	degraded := false
	live := make([]int, 0, n)
	liveProbes := make([]*d3l.ShardProbe, 0, n)
	for i := 0; i < n; i++ {
		if probeErrs[i] != nil {
			if !sq.PartialOK {
				return nil, d3l.QueryStats{}, false, fmt.Errorf("shard %d (%s) probe: %w", i, r.urls[i], probeErrs[i])
			}
			degraded = true
			continue
		}
		live = append(live, i)
		liveProbes = append(liveProbes, probes[i])
	}
	if len(live) == 0 {
		return nil, d3l.QueryStats{}, false, fmt.Errorf("all %d shards failed; first: %w", n, probeErrs[0])
	}
	depths, err := d3l.MergeShardDepths(liveProbes)
	if err != nil {
		return nil, d3l.QueryStats{}, false, err
	}
	partials := make([]*d3l.ShardPartial, len(live))
	gatherErrs := make([]error, len(live))
	for gi, i := range live {
		wg.Add(1)
		go func(gi, i int) {
			defer wg.Done()
			var p d3l.ShardPartial
			err := r.readJSON(ctx, i, "/v1/shard/gather", server.ShardGatherRequest{Table: wire, Spec: sq.Spec, Depths: *depths}, &p)
			if err != nil {
				gatherErrs[gi] = err
				return
			}
			partials[gi] = &p
		}(gi, i)
	}
	wg.Wait()
	kept := partials[:0]
	for gi, i := range live {
		if gatherErrs[gi] != nil {
			if !sq.PartialOK {
				return nil, d3l.QueryStats{}, false, fmt.Errorf("shard %d (%s) gather: %w", i, r.urls[i], gatherErrs[gi])
			}
			degraded = true
			continue
		}
		kept = append(kept, partials[gi])
	}
	if len(kept) == 0 {
		return nil, d3l.QueryStats{}, false, fmt.Errorf("all %d shards failed gather; first: %w", len(live), gatherErrs[0])
	}
	results, stats, err := d3l.MergeShardPartials(depths, kept)
	if err != nil {
		return nil, d3l.QueryStats{}, false, err
	}
	return results, stats, degraded, nil
}

// explain routes the explanation to the owning replica. Partial mode
// never applies: an explanation from the wrong shard is not a
// degraded answer, it is a 404.
func (r *Remote) explain(ctx context.Context, wire server.TableJSON, sq *d3l.ShardQuery) ([]d3l.PairExplanation, error) {
	req := server.ShardExplainRequest{Table: wire, LakeTable: sq.ExplainFor, Spec: sq.Spec}
	var resp server.ShardExplainResponse
	owner := r.place.Owner(sq.ExplainFor)
	err := r.readJSON(ctx, owner, "/v1/shard/explain", req, &resp)
	for i := 0; err != nil && isNotFound(err) && i < len(r.urls); i++ {
		// Ring-owner miss (replica set built under a different
		// placement): scan, as Set.liveOwner does.
		if i == owner {
			continue
		}
		if scanErr := r.readJSON(ctx, i, "/v1/shard/explain", req, &resp); scanErr == nil || !isNotFound(scanErr) {
			err = scanErr
		}
	}
	if err != nil {
		if isNotFound(err) {
			return nil, fmt.Errorf("%w: no table %q in the lake", d3l.ErrTableNotFound, sq.ExplainFor)
		}
		return nil, err
	}
	return resp.Rows, nil
}

// QueryBatch runs targets sequentially: each query already fans out
// across every replica.
func (r *Remote) QueryBatch(ctx context.Context, targets []*d3l.Table, opts ...d3l.QueryOption) ([]*d3l.Answer, error) {
	sq, err := d3l.ResolveShardQuery(opts...)
	if err != nil {
		return nil, err
	}
	answers := make([]*d3l.Answer, len(targets))
	for i, tgt := range targets {
		if tgt == nil {
			return nil, fmt.Errorf("d3l: nil target")
		}
		a, err := r.query(ctx, tgt, sq)
		if err != nil {
			return nil, fmt.Errorf("target %d: %w", i, err)
		}
		answers[i] = a
	}
	return answers, nil
}

// ---- server.Engine: mutations ----

// Add routes the real Add to the ring owner and mirrors the id
// consumption on every peer replica. Mutations are single-attempt —
// a retry after an ambiguous network failure could double-apply.
func (r *Remote) Add(t *d3l.Table) (int, error) {
	if t == nil {
		return 0, fmt.Errorf("d3l: nil table")
	}
	ctx, cancel := r.mutationCtx()
	defer cancel()
	owner := r.place.Owner(t.Name)
	wire := tableToWire(t)
	var resp server.AddTableResponse
	if err := r.doJSON(ctx, owner, http.MethodPost, "/v1/tables", server.AddTableRequest{Table: wire}, &resp); err != nil {
		return 0, err
	}
	for i := range r.urls {
		if i == owner {
			continue
		}
		var mresp server.ShardMirrorResponse
		mreq := server.ShardMirrorRequest{Op: "add", Name: t.Name, NumCols: len(t.Columns)}
		if err := r.doJSON(ctx, i, http.MethodPost, "/v1/shard/mirror", mreq, &mresp); err != nil {
			return 0, fmt.Errorf("shard %d: mirroring add of %q: %w", i, t.Name, err)
		}
		if mresp.ID != resp.ID {
			return 0, fmt.Errorf("shard %d: mirror of %q got id %d, owner got %d (id lockstep broken)", i, t.Name, mresp.ID, resp.ID)
		}
	}
	r.muts.Add(1)
	return resp.ID, nil
}

// Update routes the in-place update to the owning replica, then
// mirrors the fresh attribute-id consumption on the peers.
func (r *Remote) Update(t *d3l.Table) (d3l.UpdateStats, error) {
	if t == nil {
		return d3l.UpdateStats{}, fmt.Errorf("d3l: nil table")
	}
	ctx, cancel := r.mutationCtx()
	defer cancel()
	wire := tableToWire(t)
	var resp server.UpdateTableResponse
	owner, err := r.mutateOwner(ctx, t.Name, func(i int) error {
		return r.doJSON(ctx, i, http.MethodPut, "/v1/tables/"+pathEscape(t.Name), server.UpdateTableRequest{Table: wire}, &resp)
	})
	if err != nil {
		return d3l.UpdateStats{}, err
	}
	for i := range r.urls {
		if i == owner {
			continue
		}
		mreq := server.ShardMirrorRequest{Op: "update", TableID: resp.ID, NumFresh: resp.ReprofiledCols}
		if err := r.doJSON(ctx, i, http.MethodPost, "/v1/shard/mirror", mreq, new(server.ShardMirrorResponse)); err != nil {
			return d3l.UpdateStats{}, fmt.Errorf("shard %d: mirroring update of %q: %w", i, t.Name, err)
		}
	}
	r.muts.Add(1)
	return d3l.UpdateStats{
		TableID:    resp.ID,
		Reprofiled: resp.ReprofiledCols,
		Kept:       resp.KeptCols,
		Added:      resp.AddedCols,
		Dropped:    resp.DroppedCols,
	}, nil
}

// Remove tombstones the table on its owning replica. Peers hold dead
// mirror slots; no mirror op is needed.
func (r *Remote) Remove(name string) error {
	ctx, cancel := r.mutationCtx()
	defer cancel()
	_, err := r.mutateOwner(ctx, name, func(i int) error {
		return r.doJSON(ctx, i, http.MethodDelete, "/v1/tables/"+pathEscape(name), nil, new(server.RemoveTableResponse))
	})
	if err != nil {
		return err
	}
	r.muts.Add(1)
	return nil
}

// mutateOwner applies fn to the ring owner first, scanning the other
// replicas only on a not-found answer (placement drift insurance).
func (r *Remote) mutateOwner(ctx context.Context, name string, fn func(i int) error) (int, error) {
	owner := r.place.Owner(name)
	err := fn(owner)
	if err == nil {
		return owner, nil
	}
	if !isNotFound(err) {
		return 0, err
	}
	for i := range r.urls {
		if i == owner {
			continue
		}
		switch scanErr := fn(i); {
		case scanErr == nil:
			return i, nil
		case !isNotFound(scanErr):
			return 0, scanErr
		}
	}
	return 0, fmt.Errorf("%w: no table %q in the lake", d3l.ErrTableNotFound, name)
}

func (r *Remote) mutationCtx() (context.Context, context.CancelFunc) {
	// One generous deadline for the whole owner+mirrors fan-out.
	return context.WithTimeout(context.Background(), time.Duration(len(r.urls)+1)*r.cfg.ShardTimeout)
}

// ---- server.Engine: introspection ----

// Tables lists the union of the replicas' live tables, sorted.
// Fail-closed: an unreachable replica makes the listing fail rather
// than silently shrink.
func (r *Remote) Tables() []string {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ShardTimeout)
	defer cancel()
	var names []string
	for i := range r.urls {
		var resp server.TablesResponse
		if err := r.getJSON(ctx, i, "/v1/tables", &resp); err != nil {
			return nil
		}
		names = append(names, resp.Tables...)
	}
	sort.Strings(names)
	return names
}

// HasTable asks the ring owner for its live listing, scanning on a
// miss.
func (r *Remote) HasTable(name string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ShardTimeout)
	defer cancel()
	owner := r.place.Owner(name)
	order := []int{owner}
	for i := range r.urls {
		if i != owner {
			order = append(order, i)
		}
	}
	for _, i := range order {
		var resp server.TablesResponse
		if err := r.getJSON(ctx, i, "/v1/tables", &resp); err != nil {
			continue
		}
		for _, n := range resp.Tables {
			if n == name {
				return true
			}
		}
	}
	return false
}

// Fingerprint folds the construction-time replica fingerprints with
// the coordinator's own mutation count, so the serving cache
// invalidates on every mutation routed through here. Out-of-band
// replica changes require POST /v1/reload on the coordinator (which
// rebuilds the Remote and re-polls).
func (r *Remote) Fingerprint() uint64 {
	const prime = 1099511628211
	return (r.baseFP ^ r.muts.Load()) * prime
}

// NumTables reports shard 0's table-slot count (id lockstep makes all
// replicas equal); 0 if unreachable.
func (r *Remote) NumTables() int {
	t, _ := r.statsz(0)
	return t
}

// NumAttributes reports shard 0's attribute-slot count; 0 if
// unreachable.
func (r *Remote) NumAttributes() int {
	_, a := r.statsz(0)
	return a
}

func (r *Remote) statsz(i int) (tables, attrs int) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ShardTimeout)
	defer cancel()
	var resp server.StatsResponse
	if err := r.getJSON(ctx, i, "/v1/statsz", &resp); err != nil {
		return 0, 0
	}
	return resp.Tables, resp.Attributes
}

// PlannerTotals is zero: the distributed pipeline is plan-free.
func (r *Remote) PlannerTotals() d3l.PlannerTotals { return d3l.PlannerTotals{} }

// PrewarmScratch is a no-op: the replicas own their arenas.
func (r *Remote) PrewarmScratch(int) {}

// SetStageObserver is a no-op: per-stage timings are a replica-local
// concern (each replica exports its own /metrics).
func (r *Remote) SetStageObserver(d3l.StageObserver) {}

// ---- HTTP plumbing ----

// shardError is a decoded replica error; terminal errors (4xx,
// unsupported) must not be retried or hedged over.
type shardError struct {
	err      error
	terminal bool
}

func (e *shardError) Error() string { return e.err.Error() }
func (e *shardError) Unwrap() error { return e.err }

func isNotFound(err error) bool {
	return err != nil && errors.Is(err, d3l.ErrTableNotFound)
}

func pathEscape(s string) string { return url.PathEscape(s) }

// readJSON POSTs a read-path request with retry and optional hedging:
// the first successful attempt wins, terminal errors return
// immediately, and exhausted attempts return the last error.
func (r *Remote) readJSON(ctx context.Context, shard int, path string, in, out any) error {
	attempts := 1 + r.cfg.Retries
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	type result struct {
		data []byte
		err  error
	}
	ch := make(chan result, attempts)
	launched := 0
	launch := func() {
		launched++
		go func() {
			data, err := r.doOnce(ctx, shard, http.MethodPost, path, body)
			ch <- result{data, err}
		}()
	}
	launch()
	var hedgeC <-chan time.Time
	var hedge *time.Timer
	if r.cfg.HedgeAfter > 0 {
		hedge = time.NewTimer(r.cfg.HedgeAfter)
		defer hedge.Stop()
		hedgeC = hedge.C
	}
	done := 0
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-hedgeC:
			if launched < attempts {
				launch()
				hedge.Reset(r.cfg.HedgeAfter)
			}
		case res := <-ch:
			done++
			if res.err == nil {
				return json.Unmarshal(res.data, out)
			}
			lastErr = res.err
			var se *shardError
			if errors.As(res.err, &se) && se.terminal {
				return res.err
			}
			if launched < attempts {
				launch()
				if hedge != nil {
					hedge.Reset(r.cfg.HedgeAfter)
				}
				continue
			}
			if done == launched {
				return lastErr
			}
		}
	}
}

// doJSON runs one single-attempt request (mutations).
func (r *Remote) doJSON(ctx context.Context, shard int, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	data, err := r.doOnce(ctx, shard, method, path, body)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, out)
}

// getJSON runs one GET (health, stats, listings).
func (r *Remote) getJSON(ctx context.Context, shard int, path string, out any) error {
	data, err := r.doOnce(ctx, shard, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, out)
}

// doOnce performs one HTTP attempt under the per-shard timeout and
// maps replica error bodies back to the library's sentinel errors, so
// the coordinator's own HTTP layer re-maps them to the same status
// codes a monolith would answer.
func (r *Remote) doOnce(ctx context.Context, shard int, method, path string, body []byte) ([]byte, error) {
	actx, cancel := context.WithTimeout(ctx, r.cfg.ShardTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, r.urls[shard]+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusOK {
		return data, nil
	}
	var eb server.ErrorBody
	msg := strings.TrimSpace(string(data))
	if err := json.Unmarshal(data, &eb); err == nil && eb.Error.Message != "" {
		msg = eb.Error.Message
	}
	mapped := fmt.Errorf("shard %s: %s %s: %s", r.urls[shard], method, path, msg)
	switch eb.Error.Code {
	case server.CodeNotFound:
		return nil, &shardError{err: fmt.Errorf("%w: %s", d3l.ErrTableNotFound, msg), terminal: true}
	case server.CodeConflict:
		return nil, &shardError{err: fmt.Errorf("%w: %s", d3l.ErrDuplicateTable, msg), terminal: true}
	case server.CodeBadRequest:
		return nil, &shardError{err: fmt.Errorf("%w: %s", d3l.ErrInvalidOptions, msg), terminal: true}
	case server.CodeUnsupported:
		return nil, &shardError{err: fmt.Errorf("%w: %s", d3l.ErrUnsupported, msg), terminal: true}
	}
	// Overload, timeout, draining, internal: transient from the
	// coordinator's seat — retryable.
	return nil, &shardError{err: fmt.Errorf("%s (status %d)", mapped, resp.StatusCode), terminal: false}
}

// tableToWire converts a library table to wire shape (row-major).
func tableToWire(t *d3l.Table) server.TableJSON {
	out := server.TableJSON{Name: t.Name, Columns: make([]string, len(t.Columns))}
	rows := 0
	for i, c := range t.Columns {
		out.Columns[i] = c.Name
		if len(c.Values) > rows {
			rows = len(c.Values)
		}
	}
	out.Rows = make([][]string, rows)
	for ri := range out.Rows {
		row := make([]string, len(t.Columns))
		for ci, c := range t.Columns {
			if ri < len(c.Values) {
				row[ci] = c.Values[ri]
			}
		}
		out.Rows[ri] = row
	}
	return out
}
