package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"d3l"
	"d3l/internal/server"
)

// RemoteConfig tunes the coordinator's per-shard HTTP behavior. The
// zero value of any field selects the documented default.
type RemoteConfig struct {
	// ShardTimeout bounds each HTTP attempt to one shard replica.
	// 0 selects 10s.
	ShardTimeout time.Duration
	// Retries is how many extra attempts a failed read-path call gets
	// (probe, gather, explain — mutations never retry: they are not
	// idempotent across the mirror fan-out). Each retry prefers a
	// different replica of the same shard. Negative means 0.
	// 0 selects 1.
	Retries int
	// RetryDelay is the base pause before a retry, doubled per
	// attempt and jittered ±25% so synchronized failures do not
	// produce a synchronized retry storm against a recovering
	// replica. A retry whose delay would outlive the request
	// deadline is not attempted: the retry budget is capped by the
	// deadline. 0 selects 50ms; negative disables the pause.
	RetryDelay time.Duration
	// HedgeAfter, when positive, launches a duplicate attempt against
	// a *different* replica of the same shard if the first has not
	// answered within this duration — the classic tail-latency hedge,
	// made useful by replica groups (a same-URL hedge only doubles
	// load on the replica that is already slow). The first answer
	// wins. 0 disables hedging.
	HedgeAfter time.Duration
	// ProbeInterval is the cadence of the active health prober that
	// re-checks open-breaker replicas via GET /v1/healthz (subject to
	// each breaker's jittered backoff). 0 selects 1s; negative
	// disables active probing (recovery then rides on live-traffic
	// half-open trials only).
	ProbeInterval time.Duration
	// Breaker tunes the per-replica circuit breakers.
	Breaker BreakerConfig
	// Seed seeds the jitter RNG so fault-injection tests are
	// deterministic. 0 selects 1.
	Seed uint64
	// Client overrides the HTTP client (tests inject httptest
	// transports). nil builds a pooled default.
	Client *http.Client
}

func (c RemoteConfig) withDefaults() RemoteConfig {
	if c.ShardTimeout == 0 {
		c.ShardTimeout = 10 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 1
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryDelay == 0 {
		c.RetryDelay = 50 * time.Millisecond
	}
	if c.RetryDelay < 0 {
		c.RetryDelay = 0
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Client == nil {
		c.Client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 16,
			},
		}
	}
	return c
}

// maxRetryDelay caps the exponential retry backoff inside one request.
const maxRetryDelay = 2 * time.Second

// replica is one URL of one shard's replica group, with its circuit
// breaker.
type replica struct {
	shard int
	url   string
	br    *breaker
}

// Remote is the thin-coordinator backend: it implements the
// server.Engine surface by fanning the scatter-gather protocol out
// over HTTP to remote shard replicas (each a plain `d3l serve`
// process). Wrapped in server.New, it inherits the serving layer's
// result cache, admission gate and single-flight coalescing — the
// coordinator itself holds no index data.
//
// Each shard is a replica group: reads pick the healthiest
// closed-breaker replica, fail over to siblings on transient errors
// and hedge across siblings; a replica that keeps failing trips its
// breaker open and is re-admitted via jittered-backoff health probes.
// A shard is dead only when every replica of its group is open.
//
// Failure policy: fail-closed by default — a shard group with no
// answering replica (after retries/hedging) fails the query, because
// a silent subset answer would break the byte-identity contract. A
// query carrying d3l.WithPartialResults (the HTTP layer's
// ?partial=true) instead drops dead shard *groups* and marks the
// answer Degraded; degraded answers carry no exactness guarantee.
type Remote struct {
	groups [][]*replica
	place  *Placement
	cfg    RemoteConfig
	baseFP uint64
	// muts counts coordinator-applied mutations; it folds into
	// Fingerprint so the serving cache invalidates on every mutation
	// routed through this coordinator. Out-of-band replica changes
	// are surfaced by POST /v1/reload, whose LoadFunc re-polls the
	// replicas into a fresh Remote (fresh baseFP, fresh breakers).
	muts atomic.Uint64

	rngState      atomic.Uint64
	failovers     atomic.Uint64
	probeFailures atomic.Uint64
	hedgeWins     atomic.Uint64

	stopProbe chan struct{}
	probeWG   sync.WaitGroup
	closeOnce sync.Once
}

// NewRemote builds a coordinator backend over the given replica base
// URLs: one argument per shard ordinal (matching the manifest the
// replicas were built from), each a comma-separated replica group
// ("http://a:8080,http://b:8080"). Construction is fail-closed per
// group: at least one replica of every shard must answer /v1/healthz,
// and every answering replica of a shard must agree on the engine
// fingerprint (replicas serving divergent snapshots are a deployment
// error, not a runtime failure). Unreachable replicas start with
// their breaker open and are re-admitted by the active prober once
// they answer health checks.
func NewRemote(urls []string, cfg RemoteConfig) (*Remote, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("shard: coordinator needs at least 1 shard URL")
	}
	place, err := NewPlacement(len(urls), 0)
	if err != nil {
		return nil, err
	}
	r := &Remote{
		groups:    make([][]*replica, len(urls)),
		place:     place,
		cfg:       cfg.withDefaults(),
		stopProbe: make(chan struct{}),
	}
	r.rngState.Store(r.cfg.Seed)
	rnd := r.rnd
	now := time.Now
	for i, spec := range urls {
		var group []*replica
		for _, u := range strings.Split(spec, ",") {
			u = strings.TrimRight(strings.TrimSpace(u), "/")
			if u == "" {
				continue
			}
			group = append(group, &replica{shard: i, url: u, br: newBreaker(r.cfg.Breaker, now, rnd)})
		}
		if len(group) == 0 {
			return nil, fmt.Errorf("shard %d: no replica URL in %q", i, spec)
		}
		r.groups[i] = group
	}
	const prime = 1099511628211
	fp := uint64(14695981039346656037)
	fp = (fp ^ uint64(len(r.groups))) * prime
	for i, group := range r.groups {
		shardFP, seen := uint64(0), false
		for _, rep := range group {
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ShardTimeout)
			var h server.HealthResponse
			err := r.getReplica(ctx, rep, "/v1/healthz", &h)
			cancel()
			if err != nil {
				// Down at startup: admit the group without it; the
				// breaker opens so the prober owns its re-entry.
				rep.br.Trip()
				continue
			}
			sfp, err := strconv.ParseUint(h.EngineFingerprint, 16, 64)
			if err != nil {
				return nil, fmt.Errorf("shard %d (%s): bad fingerprint %q", i, rep.url, h.EngineFingerprint)
			}
			if seen && sfp != shardFP {
				return nil, fmt.Errorf("shard %d: replica %s serves fingerprint %016x, its group serves %016x (divergent snapshots)",
					i, rep.url, sfp, shardFP)
			}
			shardFP, seen = sfp, true
		}
		if !seen {
			return nil, fmt.Errorf("shard %d (%s): health check: no replica reachable", i, r.groupLabel(i))
		}
		fp = (fp ^ shardFP) * prime
	}
	r.baseFP = fp
	if r.cfg.ProbeInterval > 0 {
		r.probeWG.Add(1)
		go r.probeLoop()
	}
	return r, nil
}

// Close stops the active health prober. It is safe to call while
// requests are in flight — they finish normally — and safe to call
// more than once. The serving layer closes a Remote when a reload
// swaps it out.
func (r *Remote) Close() error {
	r.closeOnce.Do(func() { close(r.stopProbe) })
	r.probeWG.Wait()
	return nil
}

// NumShards reports the shard-group count.
func (r *Remote) NumShards() int { return len(r.groups) }

// NumReplicas reports the total replica count across all groups.
func (r *Remote) NumReplicas() int {
	n := 0
	for _, g := range r.groups {
		n += len(g)
	}
	return n
}

// URLs exposes the replica base URLs, one comma-joined entry per
// shard group (CLI diagnostics).
func (r *Remote) URLs() []string {
	out := make([]string, len(r.groups))
	for i := range r.groups {
		out[i] = r.groupLabel(i)
	}
	return out
}

func (r *Remote) groupLabel(i int) string {
	urls := make([]string, len(r.groups[i]))
	for j, rep := range r.groups[i] {
		urls[j] = rep.url
	}
	return strings.Join(urls, ",")
}

// ReplicaHealth implements server.ReplicaHealthReporter: the readiness
// endpoint and the d3l_replica_* metric families render from it.
func (r *Remote) ReplicaHealth() server.ReplicaHealth {
	h := server.ReplicaHealth{
		Shards:        len(r.groups),
		Failovers:     r.failovers.Load(),
		ProbeFailures: r.probeFailures.Load(),
		HedgeWins:     r.hedgeWins.Load(),
	}
	for _, group := range r.groups {
		for _, rep := range group {
			state, quarantined, _ := rep.br.Snapshot()
			s := state.String()
			if quarantined {
				s = server.ReplicaStateQuarantined
			}
			h.Replicas = append(h.Replicas, server.ReplicaStatus{
				Shard: rep.shard, URL: rep.url, State: s,
			})
		}
	}
	return h
}

// rnd is a splitmix64 stream shared by every jitter draw. The
// atomic step keeps it lock-free; values are deterministic as a set
// for a given seed even though concurrent draw order is not.
func (r *Remote) rnd() uint64 {
	x := r.rngState.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// ---- replica selection ----

// errGroupDown marks a shard whose whole replica group is unavailable
// (every breaker open or quarantined). It is the only condition under
// which the partial-results policy may drop a shard.
var errGroupDown = errors.New("shard: all replicas unavailable")

// pick returns the healthiest available replica of a shard group:
// closed breakers first (lowest windowed failure rate wins), then the
// first open/half-open replica whose breaker grants a trial slot.
// probe reports a granted trial, whose outcome the caller must report
// back to the breaker. exclude skips one replica (hedging: the
// duplicate must go elsewhere).
func (r *Remote) pick(shard int, exclude *replica) (rep *replica, probe bool, err error) {
	group := r.groups[shard]
	type cand struct {
		rep  *replica
		rate float64
	}
	var closed []cand
	var rest []*replica
	for _, rep := range group {
		if rep == exclude {
			continue
		}
		state, quarantined, rate := rep.br.Snapshot()
		if quarantined {
			continue
		}
		if state == BreakerClosed {
			closed = append(closed, cand{rep, rate})
		} else {
			rest = append(rest, rep)
		}
	}
	sort.SliceStable(closed, func(a, b int) bool { return closed[a].rate < closed[b].rate })
	if len(closed) > 0 {
		return closed[0].rep, false, nil
	}
	for _, rep := range rest {
		if ok, trial := rep.br.Allow(); ok {
			return rep, trial, nil
		}
	}
	return nil, false, fmt.Errorf("%w: shard %d (%s)", errGroupDown, shard, r.groupLabel(shard))
}

// record reports one attempt outcome to a replica's breaker. A
// terminal (4xx) answer counts as a success — the replica is alive
// and answering; the request was at fault. An attempt abandoned
// because the *parent* request was cancelled counts as neither: the
// replica was never given a fair chance to answer.
func (r *Remote) record(ctx context.Context, rep *replica, err error) {
	if err == nil {
		rep.br.OnSuccess()
		return
	}
	var se *shardError
	if errors.As(err, &se) && se.terminal {
		rep.br.OnSuccess()
		return
	}
	if ctx.Err() != nil {
		rep.br.Release()
		return
	}
	rep.br.OnFailure()
}

// ---- active health probing ----

func (r *Remote) probeLoop() {
	defer r.probeWG.Done()
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stopProbe:
			return
		case <-t.C:
			r.probeOnce()
		}
	}
}

// probeOnce re-checks every non-closed, non-quarantined replica whose
// breaker backoff has elapsed, plus every *closed* replica carrying a
// nonzero failure rate: passive picking deprioritizes a replica after
// its first failure, so without active probes a suspect replica's
// window would never refresh — it could neither trip (if still dead)
// nor regain rank (if healed). A probe success closes the breaker (or
// advances half-open→closed); a failure doubles the backoff. Probes
// deliberately hit /v1/healthz — wait-free on the replica — so a
// replica struggling under load is not further burdened by recovery
// checks.
func (r *Remote) probeOnce() {
	timeout := r.cfg.ShardTimeout
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	for _, group := range r.groups {
		for _, rep := range group {
			state, quarantined, rate := rep.br.Snapshot()
			if quarantined || (state == BreakerClosed && rate == 0) {
				continue
			}
			if state != BreakerClosed {
				ok, _ := rep.br.Allow()
				if !ok {
					continue // still inside backoff, or a trial is in flight
				}
			}
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			var h server.HealthResponse
			err := r.getReplica(ctx, rep, "/v1/healthz", &h)
			cancel()
			if err != nil {
				r.probeFailures.Add(1)
				rep.br.OnFailure()
				continue
			}
			rep.br.OnSuccess()
		}
	}
}

// ---- server.Engine: queries ----

// Query answers one discovery query by scatter-gather over the shard
// groups, replicating the monolith contract (see Set.Query).
func (r *Remote) Query(ctx context.Context, target *d3l.Table, opts ...d3l.QueryOption) (*d3l.Answer, error) {
	sq, err := d3l.ResolveShardQuery(opts...)
	if err != nil {
		return nil, err
	}
	if target == nil {
		return nil, fmt.Errorf("d3l: nil target")
	}
	return r.query(ctx, target, sq)
}

func (r *Remote) query(ctx context.Context, target *d3l.Table, sq *d3l.ShardQuery) (*d3l.Answer, error) {
	start := time.Now()
	wire := tableToWire(target)
	ans := &d3l.Answer{Stats: d3l.QueryStats{K: sq.K}}
	if sq.K > 0 {
		results, stats, degraded, err := r.search(ctx, wire, sq)
		if err != nil {
			return nil, err
		}
		ans.Results = results
		ans.Stats.CandidatePairs = stats.CandidatePairs
		ans.Stats.TablesScored = stats.TablesScored
		ans.Degraded = degraded
	}
	if sq.ExplainFor != "" {
		rows, err := r.explain(ctx, wire, sq)
		if err != nil {
			return nil, err
		}
		ans.Explanation = rows
	}
	ans.Stats.Elapsed = time.Since(start)
	return ans, nil
}

// search runs the two HTTP phases. Under PartialOK a shard group that
// fails its probe (after per-replica failover and retries) is dropped
// from the query entirely; a group that probed but fails its gather is
// likewise dropped. Either drop degrades the answer. With no live
// group left the query fails even under PartialOK.
func (r *Remote) search(ctx context.Context, wire server.TableJSON, sq *d3l.ShardQuery) ([]d3l.Result, d3l.QueryStats, bool, error) {
	n := len(r.groups)
	probes := make([]*d3l.ShardProbe, n)
	probeErrs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var p d3l.ShardProbe
			err := r.readJSON(ctx, i, "/v1/shard/probe", server.ShardProbeRequest{Table: wire, Spec: sq.Spec}, &p)
			if err != nil {
				probeErrs[i] = err
				return
			}
			probes[i] = &p
		}(i)
	}
	wg.Wait()
	degraded := false
	live := make([]int, 0, n)
	liveProbes := make([]*d3l.ShardProbe, 0, n)
	for i := 0; i < n; i++ {
		if probeErrs[i] != nil {
			if !sq.PartialOK {
				return nil, d3l.QueryStats{}, false, fmt.Errorf("shard %d (%s) probe: %w", i, r.groupLabel(i), probeErrs[i])
			}
			degraded = true
			continue
		}
		live = append(live, i)
		liveProbes = append(liveProbes, probes[i])
	}
	if len(live) == 0 {
		return nil, d3l.QueryStats{}, false, fmt.Errorf("all %d shards failed; first: %w", n, probeErrs[0])
	}
	depths, err := d3l.MergeShardDepths(liveProbes)
	if err != nil {
		return nil, d3l.QueryStats{}, false, err
	}
	partials := make([]*d3l.ShardPartial, len(live))
	gatherErrs := make([]error, len(live))
	for gi, i := range live {
		wg.Add(1)
		go func(gi, i int) {
			defer wg.Done()
			var p d3l.ShardPartial
			err := r.readJSON(ctx, i, "/v1/shard/gather", server.ShardGatherRequest{Table: wire, Spec: sq.Spec, Depths: *depths}, &p)
			if err != nil {
				gatherErrs[gi] = err
				return
			}
			partials[gi] = &p
		}(gi, i)
	}
	wg.Wait()
	kept := partials[:0]
	for gi, i := range live {
		if gatherErrs[gi] != nil {
			if !sq.PartialOK {
				return nil, d3l.QueryStats{}, false, fmt.Errorf("shard %d (%s) gather: %w", i, r.groupLabel(i), gatherErrs[gi])
			}
			degraded = true
			continue
		}
		kept = append(kept, partials[gi])
	}
	if len(kept) == 0 {
		return nil, d3l.QueryStats{}, false, fmt.Errorf("all %d shards failed gather; first: %w", len(live), gatherErrs[0])
	}
	results, stats, err := d3l.MergeShardPartials(depths, kept)
	if err != nil {
		return nil, d3l.QueryStats{}, false, err
	}
	return results, stats, degraded, nil
}

// explain routes the explanation to the owning group. Partial mode
// never applies: an explanation from the wrong shard is not a
// degraded answer, it is a 404.
func (r *Remote) explain(ctx context.Context, wire server.TableJSON, sq *d3l.ShardQuery) ([]d3l.PairExplanation, error) {
	req := server.ShardExplainRequest{Table: wire, LakeTable: sq.ExplainFor, Spec: sq.Spec}
	var resp server.ShardExplainResponse
	owner := r.place.Owner(sq.ExplainFor)
	err := r.readJSON(ctx, owner, "/v1/shard/explain", req, &resp)
	for i := 0; err != nil && isNotFound(err) && i < len(r.groups); i++ {
		// Ring-owner miss (replica set built under a different
		// placement): scan, as Set.liveOwner does.
		if i == owner {
			continue
		}
		if scanErr := r.readJSON(ctx, i, "/v1/shard/explain", req, &resp); scanErr == nil || !isNotFound(scanErr) {
			err = scanErr
		}
	}
	if err != nil {
		if isNotFound(err) {
			return nil, fmt.Errorf("%w: no table %q in the lake", d3l.ErrTableNotFound, sq.ExplainFor)
		}
		return nil, err
	}
	return resp.Rows, nil
}

// QueryBatch runs targets sequentially: each query already fans out
// across every shard group.
func (r *Remote) QueryBatch(ctx context.Context, targets []*d3l.Table, opts ...d3l.QueryOption) ([]*d3l.Answer, error) {
	sq, err := d3l.ResolveShardQuery(opts...)
	if err != nil {
		return nil, err
	}
	answers := make([]*d3l.Answer, len(targets))
	for i, tgt := range targets {
		if tgt == nil {
			return nil, fmt.Errorf("d3l: nil target")
		}
		a, err := r.query(ctx, tgt, sq)
		if err != nil {
			return nil, fmt.Errorf("target %d: %w", i, err)
		}
		answers[i] = a
	}
	return answers, nil
}

// ---- server.Engine: mutations ----

// Mutations and replica groups: every replica of every group must
// apply every mutation, or its engine state silently diverges from
// its siblings and the id lockstep that exactness rests on breaks.
// Mutations are therefore applied to each non-quarantined replica of
// the owner group (the real op) and of every peer group (the mirror
// op), exactly once each — never retried, because a retry after an
// ambiguous network failure could double-apply. A replica whose
// attempt fails or answers out of lockstep is *quarantined*: its
// breaker is forced open for the life of this Remote, so it can never
// serve a stale answer; POST /v1/reload re-polls the replicas and
// lifts quarantines by rebuilding coordinator state. The mutation as
// a whole succeeds while at least one replica of every group applied
// it, and fails closed otherwise.

// Add routes the real Add to the ring-owner group and mirrors the id
// consumption on every peer group.
func (r *Remote) Add(t *d3l.Table) (int, error) {
	if t == nil {
		return 0, fmt.Errorf("d3l: nil table")
	}
	ctx, cancel := r.mutationCtx()
	defer cancel()
	owner := r.place.Owner(t.Name)
	wire := tableToWire(t)
	id, err := r.applyGroup(ctx, owner, func(rep *replica) (int, error) {
		var resp server.AddTableResponse
		err := r.doReplica(ctx, rep, http.MethodPost, "/v1/tables", server.AddTableRequest{Table: wire}, &resp)
		return resp.ID, err
	})
	if err != nil {
		return 0, err
	}
	for i := range r.groups {
		if i == owner {
			continue
		}
		mreq := server.ShardMirrorRequest{Op: "add", Name: t.Name, NumCols: len(t.Columns)}
		mid, err := r.applyGroup(ctx, i, func(rep *replica) (int, error) {
			var mresp server.ShardMirrorResponse
			err := r.doReplica(ctx, rep, http.MethodPost, "/v1/shard/mirror", mreq, &mresp)
			return mresp.ID, err
		})
		if err != nil {
			return 0, fmt.Errorf("shard %d: mirroring add of %q: %w", i, t.Name, err)
		}
		if mid != id {
			return 0, fmt.Errorf("shard %d: mirror of %q got id %d, owner got %d (id lockstep broken)", i, t.Name, mid, id)
		}
	}
	r.muts.Add(1)
	return id, nil
}

// Update routes the in-place update to the owning group, then mirrors
// the fresh attribute-id consumption on the peer groups.
func (r *Remote) Update(t *d3l.Table) (d3l.UpdateStats, error) {
	if t == nil {
		return d3l.UpdateStats{}, fmt.Errorf("d3l: nil table")
	}
	ctx, cancel := r.mutationCtx()
	defer cancel()
	wire := tableToWire(t)
	var resp server.UpdateTableResponse
	owner, err := r.mutateOwner(ctx, t.Name, func(i int) error {
		_, err := r.applyGroup(ctx, i, func(rep *replica) (int, error) {
			err := r.doReplica(ctx, rep, http.MethodPut, "/v1/tables/"+pathEscape(t.Name), server.UpdateTableRequest{Table: wire}, &resp)
			return resp.ID, err
		})
		return err
	})
	if err != nil {
		return d3l.UpdateStats{}, err
	}
	for i := range r.groups {
		if i == owner {
			continue
		}
		mreq := server.ShardMirrorRequest{Op: "update", TableID: resp.ID, NumFresh: resp.ReprofiledCols}
		if _, err := r.applyGroup(ctx, i, func(rep *replica) (int, error) {
			return 0, r.doReplica(ctx, rep, http.MethodPost, "/v1/shard/mirror", mreq, new(server.ShardMirrorResponse))
		}); err != nil {
			return d3l.UpdateStats{}, fmt.Errorf("shard %d: mirroring update of %q: %w", i, t.Name, err)
		}
	}
	r.muts.Add(1)
	return d3l.UpdateStats{
		TableID:    resp.ID,
		Reprofiled: resp.ReprofiledCols,
		Kept:       resp.KeptCols,
		Added:      resp.AddedCols,
		Dropped:    resp.DroppedCols,
	}, nil
}

// Remove tombstones the table on its owning group. Peers hold dead
// mirror slots; no mirror op is needed.
func (r *Remote) Remove(name string) error {
	ctx, cancel := r.mutationCtx()
	defer cancel()
	_, err := r.mutateOwner(ctx, name, func(i int) error {
		_, err := r.applyGroup(ctx, i, func(rep *replica) (int, error) {
			return 0, r.doReplica(ctx, rep, http.MethodDelete, "/v1/tables/"+pathEscape(name), nil, new(server.RemoveTableResponse))
		})
		return err
	})
	if err != nil {
		return err
	}
	r.muts.Add(1)
	return nil
}

// applyGroup applies one mutation to every non-quarantined replica of
// a group, single-attempt each, and returns the id the first
// successful replica answered. Divergent replicas (transient failure:
// the op may or may not have landed; terminal failure or id mismatch
// after a sibling already applied: the op definitely diverged) are
// quarantined. A terminal error from the group's *first* attempted
// replica propagates — nothing was applied anywhere yet, so the group
// is still consistent (this is how not-found reaches mutateOwner's
// placement-drift scan). Fails closed when no replica applied.
func (r *Remote) applyGroup(ctx context.Context, shard int, fn func(rep *replica) (int, error)) (int, error) {
	applied := false
	id := 0
	var lastErr error
	for _, rep := range r.groups[shard] {
		if _, quarantined, _ := rep.br.Snapshot(); quarantined {
			continue
		}
		gotID, err := fn(rep)
		if err == nil {
			if !applied {
				applied, id = true, gotID
			} else if gotID != id {
				rep.br.ForceOpen(fmt.Sprintf("mutation id lockstep broken: got %d, group got %d", gotID, id))
			}
			continue
		}
		var se *shardError
		if errors.As(err, &se) && se.terminal {
			if !applied {
				return 0, err
			}
			rep.br.ForceOpen("mutation rejected after a sibling applied it: " + err.Error())
			continue
		}
		lastErr = err
		rep.br.ForceOpen("mutation outcome ambiguous: " + err.Error())
	}
	if !applied {
		if lastErr != nil {
			return 0, fmt.Errorf("shard %d (%s): no replica applied the mutation; last: %w", shard, r.groupLabel(shard), lastErr)
		}
		return 0, fmt.Errorf("%w: shard %d (%s): no replica available for the mutation", errGroupDown, shard, r.groupLabel(shard))
	}
	return id, nil
}

// mutateOwner applies fn to the ring-owner group first, scanning the
// other groups only on a not-found answer (placement drift
// insurance).
func (r *Remote) mutateOwner(ctx context.Context, name string, fn func(i int) error) (int, error) {
	owner := r.place.Owner(name)
	err := fn(owner)
	if err == nil {
		return owner, nil
	}
	if !isNotFound(err) {
		return 0, err
	}
	for i := range r.groups {
		if i == owner {
			continue
		}
		switch scanErr := fn(i); {
		case scanErr == nil:
			return i, nil
		case !isNotFound(scanErr):
			return 0, scanErr
		}
	}
	return 0, fmt.Errorf("%w: no table %q in the lake", d3l.ErrTableNotFound, name)
}

func (r *Remote) mutationCtx() (context.Context, context.CancelFunc) {
	// One generous deadline for the whole owner+mirrors fan-out.
	return context.WithTimeout(context.Background(), time.Duration(r.NumReplicas()+1)*r.cfg.ShardTimeout)
}

// ---- server.Engine: introspection ----

// Tables lists the union of the groups' live tables, sorted.
// Fail-closed: a shard group with no answering replica makes the
// listing fail rather than silently shrink.
func (r *Remote) Tables() []string {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ShardTimeout)
	defer cancel()
	var names []string
	for i := range r.groups {
		var resp server.TablesResponse
		if err := r.getShard(ctx, i, "/v1/tables", &resp); err != nil {
			return nil
		}
		names = append(names, resp.Tables...)
	}
	sort.Strings(names)
	return names
}

// HasTable asks the ring-owner group for its live listing, scanning
// on a miss.
func (r *Remote) HasTable(name string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ShardTimeout)
	defer cancel()
	owner := r.place.Owner(name)
	order := []int{owner}
	for i := range r.groups {
		if i != owner {
			order = append(order, i)
		}
	}
	for _, i := range order {
		var resp server.TablesResponse
		if err := r.getShard(ctx, i, "/v1/tables", &resp); err != nil {
			continue
		}
		for _, n := range resp.Tables {
			if n == name {
				return true
			}
		}
	}
	return false
}

// Fingerprint folds the construction-time shard fingerprints with the
// coordinator's own mutation count, so the serving cache invalidates
// on every mutation routed through here. Out-of-band replica changes
// require POST /v1/reload on the coordinator (which rebuilds the
// Remote and re-polls).
func (r *Remote) Fingerprint() uint64 {
	const prime = 1099511628211
	return (r.baseFP ^ r.muts.Load()) * prime
}

// NumTables reports shard group 0's table-slot count (id lockstep
// makes all groups equal); 0 if unreachable.
func (r *Remote) NumTables() int {
	t, _ := r.statsz(0)
	return t
}

// NumAttributes reports shard group 0's attribute-slot count; 0 if
// unreachable.
func (r *Remote) NumAttributes() int {
	_, a := r.statsz(0)
	return a
}

func (r *Remote) statsz(i int) (tables, attrs int) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ShardTimeout)
	defer cancel()
	var resp server.StatsResponse
	if err := r.getShard(ctx, i, "/v1/statsz", &resp); err != nil {
		return 0, 0
	}
	return resp.Tables, resp.Attributes
}

// PlannerTotals is zero: the distributed pipeline is plan-free.
func (r *Remote) PlannerTotals() d3l.PlannerTotals { return d3l.PlannerTotals{} }

// PrewarmScratch is a no-op: the replicas own their arenas.
func (r *Remote) PrewarmScratch(int) {}

// SetStageObserver is a no-op: per-stage timings are a replica-local
// concern (each replica exports its own /metrics).
func (r *Remote) SetStageObserver(d3l.StageObserver) {}

// ---- HTTP plumbing ----

// shardError is a decoded replica error; terminal errors (4xx,
// unsupported) must not be retried or hedged over.
type shardError struct {
	err      error
	terminal bool
}

func (e *shardError) Error() string { return e.err.Error() }
func (e *shardError) Unwrap() error { return e.err }

func isNotFound(err error) bool {
	return err != nil && errors.Is(err, d3l.ErrTableNotFound)
}

func pathEscape(s string) string { return url.PathEscape(s) }

// readJSON POSTs a read-path request with per-replica failover,
// jittered-backoff retries and cross-replica hedging: the first
// successful attempt wins, terminal errors return immediately, and
// exhausted attempts return the last error. The retry budget is
// capped by the request deadline: a retry whose backoff would outlive
// ctx is not attempted.
func (r *Remote) readJSON(ctx context.Context, shard int, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	attempts := 1 + r.cfg.Retries
	delay := r.cfg.RetryDelay
	var lastErr error
	var lastRep *replica
	for a := 0; a < attempts; a++ {
		if a > 0 && delay > 0 {
			d := jitterDuration(delay, 0.5, r.rnd)
			if deadline, ok := ctx.Deadline(); ok && time.Now().Add(d).After(deadline) {
				return lastErr // retry budget exhausted by the deadline
			}
			timer := time.NewTimer(d)
			select {
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			case <-timer.C:
			}
			if delay *= 2; delay > maxRetryDelay {
				delay = maxRetryDelay
			}
		}
		rep, probe, pickErr := r.pick(shard, nil)
		if pickErr != nil {
			if lastErr != nil {
				return lastErr
			}
			return pickErr
		}
		if lastRep != nil && rep != lastRep {
			r.failovers.Add(1)
		}
		data, err := r.attempt(ctx, rep, probe, path, body)
		if err == nil {
			return json.Unmarshal(data, out)
		}
		lastErr, lastRep = err, rep
		var se *shardError
		if errors.As(err, &se) && se.terminal {
			return err
		}
	}
	return lastErr
}

// attempt races one request against an optional hedge on a *different*
// replica of the same group. Losing attempts run to completion in the
// background (their outcome still feeds their replica's breaker); the
// channel is buffered so they never leak.
func (r *Remote) attempt(ctx context.Context, primary *replica, primaryProbe bool, path string, body []byte) ([]byte, error) {
	type result struct {
		data []byte
		err  error
		rep  *replica
	}
	ch := make(chan result, 2)
	run := func(rep *replica) {
		go func() {
			data, err := r.doOnce(ctx, rep, http.MethodPost, path, body)
			r.record(ctx, rep, err)
			ch <- result{data, err, rep}
		}()
	}
	_ = primaryProbe // the breaker tracks its own trial slot; outcome reporting is uniform
	run(primary)
	var hedgeC <-chan time.Time
	if r.cfg.HedgeAfter > 0 {
		timer := time.NewTimer(r.cfg.HedgeAfter)
		defer timer.Stop()
		hedgeC = timer.C
	}
	outstanding := 1
	var hedged *replica
	var firstErr error
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-hedgeC:
			hedgeC = nil
			// The hedge goes to a sibling: duplicating onto the
			// replica that is already slow only doubles its load.
			if rep, _, err := r.pick(primary.shard, primary); err == nil {
				hedged = rep
				outstanding++
				run(rep)
			}
		case res := <-ch:
			outstanding--
			if res.err == nil {
				if res.rep == hedged {
					r.hedgeWins.Add(1)
				}
				return res.data, nil
			}
			var se *shardError
			if errors.As(res.err, &se) && se.terminal {
				return nil, res.err
			}
			if firstErr == nil {
				firstErr = res.err
			}
			if outstanding == 0 {
				return nil, firstErr
			}
		}
	}
}

// getShard runs one GET against a shard group (health, stats,
// listings), failing over across replicas without retry delays.
func (r *Remote) getShard(ctx context.Context, shard int, path string, out any) error {
	var lastErr error
	var lastRep *replica
	for range r.groups[shard] {
		rep, _, err := r.pick(shard, lastRep)
		if err != nil {
			break
		}
		data, err := r.doOnce(ctx, rep, http.MethodGet, path, nil)
		r.record(ctx, rep, err)
		if err == nil {
			return json.Unmarshal(data, out)
		}
		if lastRep != nil {
			r.failovers.Add(1)
		}
		lastErr, lastRep = err, rep
		var se *shardError
		if errors.As(err, &se) && se.terminal {
			return err
		}
	}
	if lastErr != nil {
		return lastErr
	}
	return fmt.Errorf("%w: shard %d (%s)", errGroupDown, shard, r.groupLabel(shard))
}

// getReplica runs one GET against one specific replica (construction
// health polls, active probes) without touching its breaker.
func (r *Remote) getReplica(ctx context.Context, rep *replica, path string, out any) error {
	data, err := r.doOnce(ctx, rep, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, out)
}

// doReplica runs one single-attempt request against one specific
// replica (mutations).
func (r *Remote) doReplica(ctx context.Context, rep *replica, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	data, err := r.doOnce(ctx, rep, method, path, body)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, out)
}

// doOnce performs one HTTP attempt under the per-shard timeout and
// maps replica error bodies back to the library's sentinel errors, so
// the coordinator's own HTTP layer re-maps them to the same status
// codes a monolith would answer.
func (r *Remote) doOnce(ctx context.Context, rep *replica, method, path string, body []byte) ([]byte, error) {
	actx, cancel := context.WithTimeout(ctx, r.cfg.ShardTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, rep.url+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusOK {
		return data, nil
	}
	var eb server.ErrorBody
	msg := strings.TrimSpace(string(data))
	if err := json.Unmarshal(data, &eb); err == nil && eb.Error.Message != "" {
		msg = eb.Error.Message
	}
	mapped := fmt.Errorf("shard %s: %s %s: %s", rep.url, method, path, msg)
	switch eb.Error.Code {
	case server.CodeNotFound:
		return nil, &shardError{err: fmt.Errorf("%w: %s", d3l.ErrTableNotFound, msg), terminal: true}
	case server.CodeConflict:
		return nil, &shardError{err: fmt.Errorf("%w: %s", d3l.ErrDuplicateTable, msg), terminal: true}
	case server.CodeBadRequest:
		return nil, &shardError{err: fmt.Errorf("%w: %s", d3l.ErrInvalidOptions, msg), terminal: true}
	case server.CodeUnsupported:
		return nil, &shardError{err: fmt.Errorf("%w: %s", d3l.ErrUnsupported, msg), terminal: true}
	}
	// Overload, timeout, draining, internal: transient from the
	// coordinator's seat — retryable on a sibling replica.
	return nil, &shardError{err: fmt.Errorf("%s (status %d)", mapped, resp.StatusCode), terminal: false}
}

// tableToWire converts a library table to wire shape (row-major).
func tableToWire(t *d3l.Table) server.TableJSON {
	out := server.TableJSON{Name: t.Name, Columns: make([]string, len(t.Columns))}
	rows := 0
	for i, c := range t.Columns {
		out.Columns[i] = c.Name
		if len(c.Values) > rows {
			rows = len(c.Values)
		}
	}
	out.Rows = make([][]string, rows)
	for ri := range out.Rows {
		row := make([]string, len(t.Columns))
		for ci, c := range t.Columns {
			if ri < len(c.Values) {
				row[ci] = c.Values[ri]
			}
		}
		out.Rows[ri] = row
	}
	return out
}
