package subject

import (
	"testing"

	"d3l/internal/mlearn"
	"d3l/internal/table"
)

func mustTable(t *testing.T, name string, cols []string, rows [][]string) *table.Table {
	t.Helper()
	tb, err := table.New(name, cols, rows)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// figure1Tables reproduces the Figure 1 example; the paper states the
// subject attributes are Practice Name (S1), Practice (S2), GP (S3) and
// Practice (T) — all leftmost text columns.
func figure1Tables(t *testing.T) []LabelledTable {
	s1 := mustTable(t, "S1",
		[]string{"Practice Name", "Address", "City", "Postcode", "Patients"},
		[][]string{
			{"Dr E Cullen", "51 Botanic Av", "Belfast", "BT7 1JL", "1202"},
			{"Blackfriars", "1a Chapel St", "Salford", "M3 6AF", "3572"},
			{"The London Clinic", "20 Devonshire Pl", "London", "W1G 6BW", "4410"},
		})
	s2 := mustTable(t, "S2",
		[]string{"Practice", "City", "Postcode", "Payment"},
		[][]string{
			{"The London Clinic", "London", "W1G 6BW", "73648"},
			{"Blackfriars", "Salford", "M3 6AF", "15530"},
			{"Radclife Care", "Manchester", "M26 2SP", "20081"},
		})
	s3 := mustTable(t, "S3",
		[]string{"GP", "Location", "Opening hours"},
		[][]string{
			{"Blackfriars", "Salford", "08:00-18:00"},
			{"Radclife Care", "-", "07:00-20:00"},
			{"Bolton Medical", "Bolton", "08:00-16:00"},
		})
	return []LabelledTable{{s1, 0}, {s2, 0}, {s3, 0}}
}

func TestDefaultFindsFigure1Subjects(t *testing.T) {
	c := Default()
	for _, lt := range figure1Tables(t) {
		if got := c.SubjectIndex(lt.Table); got != lt.Subject {
			t.Errorf("table %s: subject %d, want %d", lt.Table.Name, got, lt.Subject)
		}
	}
}

func TestSubjectSkipsNumericColumns(t *testing.T) {
	tb := mustTable(t, "nums",
		[]string{"id", "count", "name"},
		[][]string{{"1", "10", "alpha"}, {"2", "20", "beta"}})
	c := Default()
	got := c.SubjectIndex(tb)
	if got != 2 {
		t.Fatalf("subject %d, want 2 (only text column)", got)
	}
}

func TestSubjectAllNumericReturnsMinusOne(t *testing.T) {
	tb := mustTable(t, "allnums",
		[]string{"a", "b"},
		[][]string{{"1", "2"}, {"3", "4"}})
	if got := Default().SubjectIndex(tb); got != -1 {
		t.Fatalf("subject %d, want -1", got)
	}
}

func TestSubjectPrefersDistinctOverRepeated(t *testing.T) {
	// Column 0 is text but repetitive; column 1 is text and distinct —
	// but column 0 is leftmost. Make column 0 very repetitive so
	// distinctness dominates.
	tb := mustTable(t, "rep",
		[]string{"category", "school"},
		[][]string{
			{"primary", "Oak Park Academy"},
			{"primary", "St Mary College"},
			{"primary", "River View School"},
			{"primary", "Hill Top Academy"},
		})
	if got := Default().SubjectIndex(tb); got != 1 {
		t.Fatalf("subject %d, want 1 (distinct names)", got)
	}
}

func TestFeaturesShapeAndRanges(t *testing.T) {
	tb := figure1Tables(t)[0].Table
	for i := range tb.Columns {
		f := Features(tb, i)
		if len(f) != FeatureCount {
			t.Fatalf("feature count %d, want %d", len(f), FeatureCount)
		}
		for j, v := range f {
			if v < 0 || v > 1 {
				t.Fatalf("feature %d of column %d out of [0,1]: %v", j, i, v)
			}
		}
	}
	// Leftness decreases with position.
	if Features(tb, 0)[0] <= Features(tb, 4)[0] {
		t.Fatal("leftness should decrease with column index")
	}
}

func TestTrainOnLabelledRecoversSubjects(t *testing.T) {
	data := figure1Tables(t)
	// Add tables where the subject is NOT leftmost to give the learner
	// signal beyond position.
	data = append(data,
		LabelledTable{mustTable(t, "S4",
			[]string{"rank", "Business Name", "Sector"},
			[][]string{
				{"1", "Acme Trading Ltd", "retail"},
				{"2", "Nova Systems", "tech"},
				{"3", "Harbor Foods", "food"},
			}), 1},
		LabelledTable{mustTable(t, "S5",
			[]string{"year", "Station", "Passengers"},
			[][]string{
				{"2019", "Piccadilly Central", "110000"},
				{"2019", "Victoria North", "98000"},
				{"2020", "Oxford Road", "45000"},
			}), 1},
	)
	c, examples, err := TrainOnLabelled(data, mlearn.Options{Iterations: 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(examples) == 0 {
		t.Fatal("no examples generated")
	}
	if acc := TableAccuracy(c, data); acc < 0.8 {
		t.Fatalf("trained table accuracy %v, want >= 0.8", acc)
	}
}

func TestTrainOnLabelledValidation(t *testing.T) {
	if _, _, err := TrainOnLabelled(nil, mlearn.Options{}); err == nil {
		t.Fatal("expected error for empty data")
	}
	tb := mustTable(t, "x", []string{"a"}, [][]string{{"v"}})
	if _, _, err := TrainOnLabelled([]LabelledTable{{tb, 5}}, mlearn.Options{}); err == nil {
		t.Fatal("expected error for out-of-range label")
	}
}

func TestFromModelValidation(t *testing.T) {
	if _, err := FromModel(nil); err == nil {
		t.Fatal("expected error for nil model")
	}
	if _, err := FromModel(&mlearn.LogisticModel{Weights: []float64{1}}); err == nil {
		t.Fatal("expected error for wrong dimensionality")
	}
	m := &mlearn.LogisticModel{Weights: make([]float64, FeatureCount)}
	if _, err := FromModel(m); err != nil {
		t.Fatal(err)
	}
}

func TestTableAccuracyEmpty(t *testing.T) {
	if TableAccuracy(Default(), nil) != 0 {
		t.Fatal("accuracy over no tables should be 0")
	}
}
