// Package subject identifies the subject attribute of a table: the
// column naming the entities the dataset is about (Venetis et al.,
// PVLDB 2011; used by D3L's Section III-C numeric guards and the
// Section IV SA-join graph). As in the paper we assume each dataset has
// exactly one subject attribute, that it is non-numeric, and that the
// classifier "favours leftmost non-numeric attributes with fewer nulls
// and many distinct values". The classifier is a logistic model over
// exactly those features, trainable on labelled tables (the paper
// 10-fold cross-validated on 350 labelled data.gov.uk tables; our
// generators emit labelled tables instead — DESIGN.md §4.4).
package subject

import (
	"errors"
	"fmt"

	"d3l/internal/mlearn"
	"d3l/internal/table"
)

// FeatureCount is the dimensionality of the per-column feature vector.
const FeatureCount = 5

// Features extracts the classifier features of column colIdx in t:
//
//	0: leftness     1 − position/arity (leftmost columns score high)
//	1: non-null     1 − null fraction
//	2: distinctness distinct fraction of non-null values
//	3: textiness    1 for Text columns, 0 for Numeric
//	4: multi-word   fraction of values with at least two words
func Features(t *table.Table, colIdx int) []float64 {
	c := t.Columns[colIdx]
	leftness := 1.0
	if t.Arity() > 1 {
		leftness = 1 - float64(colIdx)/float64(t.Arity()-1)
	}
	textiness := 0.0
	if c.Type == table.Text {
		textiness = 1
	}
	multi := 0.0
	nn := c.NonNull()
	if len(nn) > 0 {
		cnt := 0
		for _, v := range nn {
			spaces := 0
			for _, r := range v {
				if r == ' ' {
					spaces++
				}
			}
			if spaces >= 1 {
				cnt++
			}
		}
		multi = float64(cnt) / float64(len(nn))
	}
	return []float64{
		leftness,
		1 - c.NullFraction(),
		c.DistinctFraction(),
		textiness,
		multi,
	}
}

// Classifier scores columns and picks the subject attribute.
type Classifier struct {
	model *mlearn.LogisticModel
}

// Default returns a classifier with pre-trained coefficients. The
// values come from TrainOnLabelled over generator-labelled tables (see
// TestDefaultMatchesTrained); they encode the paper's stated intuition:
// leftmost, non-null, distinct, textual columns win.
func Default() *Classifier {
	return &Classifier{model: &mlearn.LogisticModel{
		Weights: []float64{1.6, 1.2, 3.2, 2.6, 0.6},
		Bias:    -5.2,
	}}
}

// Model exposes the underlying logistic model so engine snapshots can
// persist the classifier's coefficients; reconstruct with FromModel.
func (c *Classifier) Model() *mlearn.LogisticModel { return c.model }

// FromModel wraps a trained logistic model.
func FromModel(m *mlearn.LogisticModel) (*Classifier, error) {
	if m == nil || len(m.Weights) != FeatureCount {
		return nil, fmt.Errorf("subject: model must have %d weights", FeatureCount)
	}
	return &Classifier{model: m}, nil
}

// Score returns the subject probability of column colIdx.
func (c *Classifier) Score(t *table.Table, colIdx int) float64 {
	return c.model.Predict(Features(t, colIdx))
}

// SubjectIndex returns the index of the most probable subject attribute
// among non-numeric columns, or -1 when the table has no text column
// (the paper assumes subject attributes have non-numeric values).
func (c *Classifier) SubjectIndex(t *table.Table) int {
	best, bestScore := -1, -1.0
	for i, col := range t.Columns {
		if col.Type != table.Text {
			continue
		}
		if s := c.Score(t, i); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// LabelledTable pairs a table with its known subject column for
// training.
type LabelledTable struct {
	Table   *table.Table
	Subject int
}

// TrainOnLabelled fits a classifier on labelled tables: every column
// becomes one example, labelled 1 iff it is the subject.
func TrainOnLabelled(data []LabelledTable, opts mlearn.Options) (*Classifier, []mlearn.Example, error) {
	if len(data) == 0 {
		return nil, nil, errors.New("subject: no labelled tables")
	}
	var examples []mlearn.Example
	for _, lt := range data {
		if lt.Subject < 0 || lt.Subject >= lt.Table.Arity() {
			return nil, nil, fmt.Errorf("subject: table %q labels column %d of %d", lt.Table.Name, lt.Subject, lt.Table.Arity())
		}
		for i := range lt.Table.Columns {
			label := 0.0
			if i == lt.Subject {
				label = 1
			}
			examples = append(examples, mlearn.Example{Features: Features(lt.Table, i), Label: label})
		}
	}
	m, err := mlearn.TrainLogistic(examples, opts)
	if err != nil {
		return nil, nil, err
	}
	return &Classifier{model: m}, examples, nil
}

// TableAccuracy reports the fraction of labelled tables whose subject
// SubjectIndex recovers exactly (the 89% figure in the paper's footnote
// is this measure over their 350 labelled tables).
func TableAccuracy(c *Classifier, data []LabelledTable) float64 {
	if len(data) == 0 {
		return 0
	}
	ok := 0
	for _, lt := range data {
		if c.SubjectIndex(lt.Table) == lt.Subject {
			ok++
		}
	}
	return float64(ok) / float64(len(data))
}
