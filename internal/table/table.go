// Package table provides the dataset model used across the repository:
// tables with named, typed columns; domain-independent type inference
// (string vs numeric, the only metadata the paper assumes available);
// CSV input/output; and the in-memory data-lake container the indexes
// are built over.
package table

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrDuplicateName reports an Add of a table whose name is already
// taken. Callers branch on it with errors.Is — the HTTP serving layer
// maps it to 409 — instead of inferring duplication from lake state,
// which races concurrent mutations.
var ErrDuplicateName = errors.New("lake: duplicate table name")

// ErrInvalidName reports a table name that cannot round-trip through
// the on-disk lake layout. SaveLakeDir writes dir/<name>.csv, so a
// name carrying a path separator or a dot-segment would escape the
// lake directory; Add rejects such names up front (the HTTP serving
// layer maps this to 400) instead of letting a later save scribble
// outside the lake.
var ErrInvalidName = errors.New("lake: invalid table name")

// ValidateName reports whether a table name is safe to use as the
// stem of a lake file: non-empty, not "." or "..", and free of path
// separators and NUL. Lake.Add enforces it; watch-mode and the server
// inherit the guarantee through that one boundary.
func ValidateName(name string) error {
	switch {
	case name == "":
		return fmt.Errorf("%w: empty", ErrInvalidName)
	case name == "." || name == "..":
		return fmt.Errorf("%w: %q", ErrInvalidName, name)
	case strings.ContainsAny(name, "/\\\x00"):
		return fmt.Errorf("%w: %q contains a path separator or NUL", ErrInvalidName, name)
	}
	return nil
}

// Type is the domain-independent type of a column. The paper assumes at
// most attribute names and such types are known (Section I).
type Type int

const (
	// Text marks columns treated through the N, V, F, E evidence types.
	Text Type = iota
	// Numeric marks columns treated through N, F and the D (KS) evidence.
	Numeric
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Text:
		return "text"
	case Numeric:
		return "numeric"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// numericThreshold is the fraction of non-null values that must parse
// as numbers for a column to be inferred Numeric.
const numericThreshold = 0.8

// Column is a named attribute with its extent.
type Column struct {
	Name   string
	Values []string
	Type   Type

	numeric []float64 // cached parse of numeric extents
}

// NewColumn builds a column and infers its type from the extent.
func NewColumn(name string, values []string) *Column {
	c := &Column{Name: name, Values: values}
	c.inferType()
	return c
}

// inferType classifies the column and caches the parsed numeric extent.
func (c *Column) inferType() {
	nonNull := 0
	parsed := make([]float64, 0, len(c.Values))
	for _, v := range c.Values {
		v = strings.TrimSpace(v)
		if v == "" || v == "-" || strings.EqualFold(v, "null") || strings.EqualFold(v, "n/a") || strings.EqualFold(v, "na") {
			continue
		}
		nonNull++
		if f, err := parseNumber(v); err == nil {
			parsed = append(parsed, f)
		}
	}
	if nonNull > 0 && float64(len(parsed)) >= numericThreshold*float64(nonNull) {
		c.Type = Numeric
		c.numeric = parsed
	} else {
		c.Type = Text
		c.numeric = nil
	}
}

// parseNumber accepts plain and thousand-separated decimals, optional
// leading currency signs and trailing percent signs (open-data lakes are
// full of them).
func parseNumber(s string) (float64, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "£")
	s = strings.TrimPrefix(s, "$")
	s = strings.TrimPrefix(s, "€")
	s = strings.TrimSuffix(s, "%")
	s = strings.ReplaceAll(s, ",", "")
	return strconv.ParseFloat(s, 64)
}

// NumericExtent returns the parsed numeric values of a Numeric column
// (nil for Text columns).
func (c *Column) NumericExtent() []float64 { return c.numeric }

// NonNull returns the non-null string values of the extent.
func (c *Column) NonNull() []string {
	out := make([]string, 0, len(c.Values))
	for _, v := range c.Values {
		if t := strings.TrimSpace(v); t != "" && t != "-" && !strings.EqualFold(t, "null") {
			out = append(out, t)
		}
	}
	return out
}

// NullFraction reports the fraction of null/blank values.
func (c *Column) NullFraction() float64 {
	if len(c.Values) == 0 {
		return 1
	}
	return 1 - float64(len(c.NonNull()))/float64(len(c.Values))
}

// DistinctFraction reports distinct non-null values over non-null count.
func (c *Column) DistinctFraction() float64 {
	nn := c.NonNull()
	if len(nn) == 0 {
		return 0
	}
	set := make(map[string]struct{}, len(nn))
	for _, v := range nn {
		set[v] = struct{}{}
	}
	return float64(len(set)) / float64(len(nn))
}

// DataBytes reports the raw payload size of the extent plus name, used
// for the Table II space-overhead denominators.
func (c *Column) DataBytes() int64 {
	total := int64(len(c.Name))
	for _, v := range c.Values {
		total += int64(len(v)) + 1
	}
	return total
}

// Table is a named dataset.
type Table struct {
	Name    string
	Columns []*Column

	// metaOnly marks a table reconstructed from snapshot metadata: its
	// columns carry names and types but no extents. Content diffing
	// against such a table is impossible, so Engine.Update falls back
	// to a full re-profile when the stored side is metadata-only.
	metaOnly bool
}

// MetaOnly reports whether this table carries schema metadata only
// (names and types, no extents) — true for tables of a snapshot-loaded
// lake, false for tables built from data.
func (t *Table) MetaOnly() bool { return t.metaOnly }

// New assembles a table from column names and row-major values. Short
// rows are padded with empty strings; long rows are an error.
// Duplicate column names are disambiguated with numeric suffixes (the
// second "name" becomes "name_2") so lookups by column name — Project,
// joins, explain — are never silently ambiguous.
func New(name string, columnNames []string, rows [][]string) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("table: empty table name")
	}
	if len(columnNames) == 0 {
		return nil, fmt.Errorf("table %q: no columns", name)
	}
	cols := make([][]string, len(columnNames))
	for i := range cols {
		cols[i] = make([]string, len(rows))
	}
	for r, row := range rows {
		if len(row) > len(columnNames) {
			return nil, fmt.Errorf("table %q: row %d has %d cells, schema has %d", name, r, len(row), len(columnNames))
		}
		for cIdx, cell := range row {
			cols[cIdx][r] = cell
		}
	}
	t := &Table{Name: name, Columns: make([]*Column, len(columnNames))}
	// Reserve every header name up front so disambiguation never
	// steals a name a later column carries explicitly: in
	// "name,name,name_2" the duplicate becomes name_3, not name_2.
	used := make(map[string]struct{}, len(columnNames))
	first := make(map[string]int, len(columnNames))
	for i, cn := range columnNames {
		used[cn] = struct{}{}
		if _, seen := first[cn]; !seen {
			first[cn] = i
		}
	}
	for i, cn := range columnNames {
		if first[cn] != i {
			cn = uniqueColumnName(cn, used)
		}
		t.Columns[i] = NewColumn(cn, cols[i])
	}
	return t, nil
}

// uniqueColumnName returns the first free name_2, name_3, … candidate
// for a duplicated header name (counting on until even the suffixed
// form is free, in case the header itself contains "name_2"). The
// chosen name is recorded in used.
func uniqueColumnName(name string, used map[string]struct{}) string {
	for n := 2; ; n++ {
		candidate := fmt.Sprintf("%s_%d", name, n)
		if _, taken := used[candidate]; !taken {
			used[candidate] = struct{}{}
			return candidate
		}
	}
}

// Arity reports the number of columns.
func (t *Table) Arity() int { return len(t.Columns) }

// Rows reports the number of rows.
func (t *Table) Rows() int {
	if len(t.Columns) == 0 {
		return 0
	}
	return len(t.Columns[0].Values)
}

// Column returns the column with the given name, or nil.
func (t *Table) Column(name string) *Column {
	for _, c := range t.Columns {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ColumnNames returns the schema in declaration order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
	}
	return names
}

// NumericColumnFraction reports the share of Numeric columns (Fig. 2c).
func (t *Table) NumericColumnFraction() float64 {
	if len(t.Columns) == 0 {
		return 0
	}
	n := 0
	for _, c := range t.Columns {
		if c.Type == Numeric {
			n++
		}
	}
	return float64(n) / float64(len(t.Columns))
}

// DataBytes reports the payload size of the whole table.
func (t *Table) DataBytes() int64 {
	var total int64
	for _, c := range t.Columns {
		total += c.DataBytes()
	}
	return total
}

// Project returns a new table with the named columns, in the given
// order. Unknown names are an error.
func (t *Table) Project(name string, columnNames ...string) (*Table, error) {
	out := &Table{Name: name}
	for _, cn := range columnNames {
		c := t.Column(cn)
		if c == nil {
			return nil, fmt.Errorf("table %q: no column %q", t.Name, cn)
		}
		out.Columns = append(out.Columns, NewColumn(c.Name, append([]string(nil), c.Values...)))
	}
	if len(out.Columns) == 0 {
		return nil, fmt.Errorf("table %q: projection selects no columns", t.Name)
	}
	return out, nil
}

// SelectRows returns a new table keeping the rows at the given indices.
func (t *Table) SelectRows(name string, rowIdx []int) (*Table, error) {
	out := &Table{Name: name, Columns: make([]*Column, len(t.Columns))}
	n := t.Rows()
	for _, r := range rowIdx {
		if r < 0 || r >= n {
			return nil, fmt.Errorf("table %q: row index %d out of range [0,%d)", t.Name, r, n)
		}
	}
	for i, c := range t.Columns {
		vals := make([]string, len(rowIdx))
		for j, r := range rowIdx {
			vals[j] = c.Values[r]
		}
		out.Columns[i] = NewColumn(c.Name, vals)
	}
	return out, nil
}

// Lake is an in-memory collection of tables with stable integer ids.
type Lake struct {
	tables []*Table
	byName map[string]int
}

// NewLake returns an empty lake.
func NewLake() *Lake {
	return &Lake{byName: make(map[string]int)}
}

// Add appends a table and returns its id. Duplicate names are an error:
// table names identify datasets in ground truths and join graphs.
// Names that cannot round-trip through the on-disk layout (path
// separators, dot-segments) are rejected with ErrInvalidName.
func (l *Lake) Add(t *Table) (int, error) {
	if err := ValidateName(t.Name); err != nil {
		return 0, err
	}
	if _, dup := l.byName[t.Name]; dup {
		return 0, fmt.Errorf("%w: %q", ErrDuplicateName, t.Name)
	}
	id := len(l.tables)
	l.tables = append(l.tables, t)
	l.byName[t.Name] = id
	return id, nil
}

// Replace swaps the table stored under an existing live name for t,
// keeping the id (and every other slot) intact — the lake half of an
// in-place engine Update. It reports the reused id and whether the
// name was live; a detached or unknown name reports false and changes
// nothing.
func (l *Lake) Replace(t *Table) (int, bool) {
	id, ok := l.byName[t.Name]
	if !ok {
		return 0, false
	}
	l.tables[id] = t
	return id, true
}

// live reports whether slot id holds an attached table: its name still
// resolves back to this slot. Remove frees the name (a later Add of
// the same name claims a new slot), so a detached slot's name either
// misses the index or points elsewhere.
func (l *Lake) live(id int) bool {
	got, ok := l.byName[l.tables[id].Name]
	return ok && got == id
}

// Remove detaches the named table: the name becomes free for reuse by
// a later Add, while the id slot is retained so outstanding ids stay
// valid and other ids never shift. The slot is reduced to a name-only
// stub — the column payload is released, so serve-while-mutating
// workloads don't accumulate dead extents. It reports the freed id
// and whether the name was present. Len keeps counting detached
// slots; engines track liveness.
func (l *Lake) Remove(name string) (int, bool) {
	id, ok := l.byName[name]
	if !ok {
		return 0, false
	}
	delete(l.byName, name)
	l.tables[id] = &Table{Name: name}
	return id, true
}

// Reserve appends a detached name-only slot and returns its id,
// without claiming the name in the index — the slot is born in the
// state Remove leaves behind. Shard engines use it to mirror a table
// added on a peer shard: the id advances in lockstep with the owning
// shard's Add, but the name stays free here, so lookups and a later
// real Add of the same name behave as if the table never existed
// locally.
func (l *Lake) Reserve(name string) int {
	id := len(l.tables)
	l.tables = append(l.tables, &Table{Name: name})
	return id
}

// Len reports the number of tables.
func (l *Lake) Len() int { return len(l.tables) }

// Table returns the table with the given id.
func (l *Lake) Table(id int) *Table { return l.tables[id] }

// Tables returns the backing slice (do not mutate).
func (l *Lake) Tables() []*Table { return l.tables }

// IDByName returns the id of a named table.
func (l *Lake) IDByName(name string) (int, bool) {
	id, ok := l.byName[name]
	return id, ok
}

// ByName returns a named table, or nil.
func (l *Lake) ByName(name string) *Table {
	if id, ok := l.byName[name]; ok {
		return l.tables[id]
	}
	return nil
}

// DataBytes reports the total payload size of the lake. Detached
// slots (name-only stubs left by Remove) hold no payload and are
// skipped.
func (l *Lake) DataBytes() int64 {
	var total int64
	for id, t := range l.tables {
		if !l.live(id) {
			continue
		}
		total += t.DataBytes()
	}
	return total
}
