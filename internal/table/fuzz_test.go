package table

import (
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary (frequently malformed) CSV input to the
// table reader: it must either return a table satisfying the package
// invariants or an error — never panic. Open-data lakes are full of
// ragged, quoted, and truncated files, and this is the boundary where
// they enter the system.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b,c\n1,2,3\n")
	f.Add("a,b\n1\n1,2,3,4\n")                 // ragged rows both ways
	f.Add("\"unclosed quote\na,b\n")           // malformed quoting
	f.Add("a,a,a\nx,y,z\n")                    // duplicate headers
	f.Add("name,name,name_2,name\nw,x,y,z\n")  // dedup collides with a real name_2
	f.Add("\n")                                // 1-byte tombstone stub (the old SaveLakeDir bug)
	f.Add("")                                  // empty input
	f.Add("\n\n\n")                            // blank records
	f.Add("a;b\r\n1;2\r\n")                    // CRLF, wrong delimiter
	f.Add("col\n" + strings.Repeat("v\n", 50)) // long single column
	f.Add("a,b\n\"x\"\"y\",2\n")               // escaped quotes
	f.Add("\xef\xbb\xbfa,b\n1,2\n")            // BOM
	f.Add("a,\xff\xfe\n\x00,2\n")              // junk bytes
	f.Fuzz(func(t *testing.T, data string) {
		tab, err := ReadCSV(strings.NewReader(data), "fuzz")
		if err != nil {
			return // malformed input must error, and it did
		}
		if tab.Arity() == 0 {
			t.Fatalf("ReadCSV accepted %q but produced a table with no columns", data)
		}
		rows := tab.Rows()
		seen := make(map[string]bool, tab.Arity())
		for _, c := range tab.Columns {
			if len(c.Values) != rows {
				t.Fatalf("ReadCSV(%q): column %q has %d values, table has %d rows", data, c.Name, len(c.Values), rows)
			}
			// Ingest disambiguates duplicate headers; uniqueness is what
			// lets the update path diff columns by name.
			if seen[c.Name] {
				t.Fatalf("ReadCSV(%q): duplicate column name %q survived ingest", data, c.Name)
			}
			seen[c.Name] = true
		}
		// The parsed table must survive the rest of the pipeline's
		// basic accessors without panicking.
		_ = tab.DataBytes()
		_ = tab.NumericColumnFraction()
		for _, c := range tab.Columns {
			_ = c.NonNull()
			_ = c.NullFraction()
			_ = c.DistinctFraction()
			if c.Type == Numeric && c.NumericExtent() == nil {
				t.Fatalf("ReadCSV(%q): numeric column %q with nil extent", data, c.Name)
			}
		}
	})
}
