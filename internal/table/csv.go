package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ReadCSV parses a table from CSV. The first record is the header. The
// table name is supplied by the caller (usually the file stem).
func ReadCSV(r io.Reader, name string) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // open data is ragged; pad/truncate below
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table %q: reading header: %w", name, err)
	}
	var rows [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table %q: reading rows: %w", name, err)
		}
		if len(rec) > len(header) {
			rec = rec[:len(header)]
		}
		rows = append(rows, rec)
	}
	return New(name, header, rows)
}

// ReadCSVFile loads a table from a CSV file, naming it after the file
// stem.
func ReadCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return ReadCSV(f, name)
}

// WriteCSV writes the table as CSV with a header record.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return err
	}
	n := t.Rows()
	row := make([]string, t.Arity())
	for r := 0; r < n; r++ {
		for c, col := range t.Columns {
			row[c] = col.Values[r]
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to a file.
func (t *Table) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadLakeDir loads every *.csv file under dir (non-recursive) into a
// lake, in stable lexicographic order so ids are reproducible.
func LoadLakeDir(dir string) (*Lake, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(strings.ToLower(e.Name()), ".csv") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	lake := NewLake()
	for _, n := range names {
		t, err := ReadCSVFile(filepath.Join(dir, n))
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", n, err)
		}
		if _, err := lake.Add(t); err != nil {
			return nil, err
		}
	}
	return lake, nil
}

// SaveLakeDir writes every live table of the lake as dir/<name>.csv.
// Detached slots — the name-only stubs Lake.Remove leaves so ids stay
// stable — are skipped: a stub has no header, so writing it would
// produce a CSV that LoadLakeDir rejects ("reading header: EOF") and
// would resurrect a removed name on the next load.
func SaveLakeDir(l *Lake, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for id, t := range l.Tables() {
		if !l.live(id) {
			continue
		}
		if err := t.WriteCSVFile(filepath.Join(dir, t.Name+".csv")); err != nil {
			return err
		}
	}
	return nil
}
