package table

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// Regression for the tombstone-stub bug: SaveLakeDir used to write the
// name-only stubs Lake.Remove leaves behind as 1-byte CSV files, which
// LoadLakeDir then rejected ("reading header: EOF") — a mutated lake
// could not round-trip through disk. Detached slots must be skipped.
func TestSaveLakeDirSkipsRemovedTables(t *testing.T) {
	dir := t.TempDir()
	l := NewLake()
	mustAdd := func(name string, cols []string, rows [][]string) {
		t.Helper()
		tb, err := New(name, cols, rows)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Add(tb); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd("keep", []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	mustAdd("gone", []string{"x"}, [][]string{{"9"}})
	mustAdd("churn", []string{"p", "q"}, [][]string{{"5", "6"}})

	if _, ok := l.Remove("gone"); !ok {
		t.Fatal("Remove(gone) failed")
	}
	// Removed-then-re-added name: the re-add lives in a NEW slot while
	// the old slot still holds a detached stub with the same name —
	// exactly one of them may reach disk.
	if _, ok := l.Remove("churn"); !ok {
		t.Fatal("Remove(churn) failed")
	}
	mustAdd("churn", []string{"p", "q"}, [][]string{{"7", "8"}, {"9", "10"}})

	if err := SaveLakeDir(l, dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		files = append(files, e.Name())
	}
	if len(files) != 2 {
		t.Fatalf("saved files %v, want exactly keep.csv and churn.csv", files)
	}

	got, err := LoadLakeDir(dir)
	if err != nil {
		t.Fatalf("round-trip load failed (the tombstone-stub bug): %v", err)
	}
	if got.Len() != 2 || got.ByName("keep") == nil || got.ByName("churn") == nil {
		t.Fatalf("round-trip lost tables: %d live", got.Len())
	}
	if got.ByName("gone") != nil {
		t.Fatal("removed table resurrected by round-trip")
	}
	// The re-added churn content (not the detached stub's) survives.
	if got.ByName("churn").Rows() != 2 {
		t.Fatal("round-trip kept the wrong churn version")
	}
}

// DataBytes must count live tables only: a removed table's bytes are
// no longer part of the lake.
func TestDataBytesSkipsRemovedTables(t *testing.T) {
	l := NewLake()
	tb, err := New("t", []string{"a"}, [][]string{{"hello"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Add(tb); err != nil {
		t.Fatal(err)
	}
	before := l.DataBytes()
	if before <= 0 {
		t.Fatal("live table should count")
	}
	l.Remove("t")
	if got := l.DataBytes(); got != 0 {
		t.Fatalf("DataBytes after remove = %d, want 0", got)
	}
	_ = before
}

// Duplicate CSV headers used to be accepted silently, leaving two
// columns indistinguishable by name. Ingest now disambiguates with
// _2, _3… suffixes, stepping over suffixes the header already uses.
func TestNewDisambiguatesDuplicateHeaders(t *testing.T) {
	cases := []struct {
		header []string
		want   []string
	}{
		{[]string{"a", "a", "a"}, []string{"a", "a_2", "a_3"}},
		{[]string{"name", "name", "name_2", "name"}, []string{"name", "name_3", "name_2", "name_4"}},
		{[]string{"x", "y"}, []string{"x", "y"}},
	}
	for _, c := range cases {
		row := make([]string, len(c.header))
		for i := range row {
			row[i] = "v"
		}
		tb, err := New("t", c.header, [][]string{row})
		if err != nil {
			t.Fatal(err)
		}
		if got := tb.ColumnNames(); !reflect.DeepEqual(got, c.want) {
			t.Errorf("New(%v) columns = %v, want %v", c.header, got, c.want)
		}
	}
}

func TestReadCSVDisambiguatesDuplicateHeaders(t *testing.T) {
	tb, err := ReadCSV(strings.NewReader("id,id\n1,2\n"), "t")
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.ColumnNames(); !reflect.DeepEqual(got, []string{"id", "id_2"}) {
		t.Fatalf("columns = %v", got)
	}
	if tb.Columns[0].Values[0] != "1" || tb.Columns[1].Values[0] != "2" {
		t.Fatal("values shuffled by disambiguation")
	}
}

func TestValidateName(t *testing.T) {
	for _, ok := range []string{"t", "my table", "a.b", "x-1_y", "café"} {
		if err := ValidateName(ok); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", ".", "..", "a/b", `a\b`, "../../etc/passwd", "a\x00b"} {
		err := ValidateName(bad)
		if !errors.Is(err, ErrInvalidName) {
			t.Errorf("ValidateName(%q) = %v, want ErrInvalidName", bad, err)
		}
	}
}

// Lake.Add is the chokepoint: a table whose name would escape the lake
// directory (SaveLakeDir writes dir/<name>.csv) must never get in.
func TestLakeAddRejectsInvalidNames(t *testing.T) {
	l := NewLake()
	tb, err := New("../evil", []string{"a"}, [][]string{{"1"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Add(tb); !errors.Is(err, ErrInvalidName) {
		t.Fatalf("Add(../evil) = %v, want ErrInvalidName", err)
	}
	if l.Len() != 0 {
		t.Fatal("rejected table left a slot behind")
	}
	// SaveLakeDir of a valid lake never writes outside dir — pin that
	// the path-join of every saved name stays under the directory.
	good, err := New("fine", []string{"a"}, [][]string{{"1"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Add(good); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := SaveLakeDir(l, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fine.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestLakeReplaceKeepsIDAndName(t *testing.T) {
	l := NewLake()
	v1, err := New("t", []string{"a"}, [][]string{{"1"}})
	if err != nil {
		t.Fatal(err)
	}
	id, err := l.Add(v1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := New("t", []string{"a", "b"}, [][]string{{"2", "3"}})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := l.Replace(v2)
	if !ok || got != id {
		t.Fatalf("Replace = (%d, %v), want (%d, true)", got, ok, id)
	}
	if l.Table(id) != v2 || l.ByName("t") != v2 {
		t.Fatal("Replace did not swap the stored table")
	}
	if _, ok := l.Replace(mustNew(t, "missing", []string{"a"}, [][]string{{"1"}})); ok {
		t.Fatal("Replace of unknown name should report false")
	}
}

func mustNew(t *testing.T, name string, cols []string, rows [][]string) *Table {
	t.Helper()
	tb, err := New(name, cols, rows)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}
