package table

import (
	"fmt"

	"d3l/internal/persist"
)

// EncodeMeta serialises the lake's metadata — table names, column
// names and types, and per-slot liveness — into a snapshot buffer.
// Raw extents are deliberately not written: an indexed engine answers
// every query from its attribute profiles, so a serving replica only
// needs the lake's shape (stable ids, names for results and Remove,
// arities for alignment reporting). Tombstoned slots (Remove leaves a
// name-only stub outside the name index) are recorded as such, keeping
// snapshot size independent of Add/Remove churn.
func (l *Lake) EncodeMeta(b *persist.Buffer) {
	b.U32(uint32(len(l.tables)))
	for id, t := range l.tables {
		live := l.live(id)
		b.Bool(live)
		b.Str(t.Name)
		if !live {
			continue
		}
		b.U32(uint32(len(t.Columns)))
		for _, c := range t.Columns {
			b.Str(c.Name)
			b.U8(uint8(c.Type))
		}
	}
}

// DecodeLakeMeta reconstructs a lake written by EncodeMeta: live slots
// become extent-free tables registered in the name index, tombstoned
// slots become the same name-only stubs Remove leaves behind. Ids are
// positional, so every table keeps the id it had at encode time.
func DecodeLakeMeta(r *persist.Reader) (*Lake, error) {
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	// Each encoded table slot is at least a liveness byte plus a name
	// count (5 bytes); bounding by that floor keeps a crafted count
	// from amplifying into a huge up-front allocation.
	if n < 0 || n > r.Remaining()/5 {
		return nil, fmt.Errorf("%w: lake declares %d tables in %d bytes", persist.ErrCorrupt, n, r.Remaining())
	}
	l := NewLake()
	l.tables = make([]*Table, 0, n)
	for id := 0; id < n; id++ {
		live := r.Bool()
		name := r.Str()
		// Decoded tables carry schema metadata only; the flag lets
		// Engine.Update know content diffing against them is impossible.
		t := &Table{Name: name, metaOnly: true}
		if live {
			cols := int(r.U32())
			if err := r.Err(); err != nil {
				return nil, err
			}
			if cols < 0 || cols > r.Remaining()/5 {
				return nil, fmt.Errorf("%w: table %q declares %d columns in %d bytes", persist.ErrCorrupt, name, cols, r.Remaining())
			}
			t.Columns = make([]*Column, cols)
			for c := 0; c < cols; c++ {
				colName := r.Str()
				typ := Type(r.U8())
				if typ != Text && typ != Numeric {
					return nil, fmt.Errorf("%w: table %q column %q has type %d", persist.ErrCorrupt, name, colName, typ)
				}
				t.Columns[c] = &Column{Name: colName, Type: typ}
			}
			if _, dup := l.byName[name]; dup {
				return nil, fmt.Errorf("%w: duplicate live table name %q", persist.ErrCorrupt, name)
			}
			l.byName[name] = id
		}
		l.tables = append(l.tables, t)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return l, nil
}
