package table

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func figure1S1() *Table {
	t, err := New("S1",
		[]string{"Practice Name", "Address", "City", "Postcode", "Patients"},
		[][]string{
			{"Dr E Cullen", "51 Botanic Av", "Belfast", "BT7 1JL", "1202"},
			{"Blackfriars", "1a Chapel St", "Salford", "M3 6AF", "3572"},
		})
	if err != nil {
		panic(err)
	}
	return t
}

func TestNewTableShape(t *testing.T) {
	s1 := figure1S1()
	if s1.Arity() != 5 || s1.Rows() != 2 {
		t.Fatalf("arity %d rows %d", s1.Arity(), s1.Rows())
	}
	if got := s1.ColumnNames(); !reflect.DeepEqual(got, []string{"Practice Name", "Address", "City", "Postcode", "Patients"}) {
		t.Fatalf("column names %v", got)
	}
}

func TestNewTableValidation(t *testing.T) {
	if _, err := New("", []string{"a"}, nil); err == nil {
		t.Fatal("expected error for empty name")
	}
	if _, err := New("t", nil, nil); err == nil {
		t.Fatal("expected error for no columns")
	}
	if _, err := New("t", []string{"a"}, [][]string{{"1", "2"}}); err == nil {
		t.Fatal("expected error for too-long row")
	}
}

func TestShortRowsPadded(t *testing.T) {
	tb, err := New("t", []string{"a", "b"}, [][]string{{"1"}})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Columns[1].Values[0] != "" {
		t.Fatal("short row should be padded with empty cell")
	}
}

func TestTypeInference(t *testing.T) {
	s1 := figure1S1()
	if s1.Column("Patients").Type != Numeric {
		t.Fatal("Patients should be numeric")
	}
	if s1.Column("Postcode").Type != Text {
		t.Fatal("Postcode should be text")
	}
	if s1.Column("Practice Name").Type != Text {
		t.Fatal("Practice Name should be text")
	}
}

func TestTypeInferenceCurrencyAndPercent(t *testing.T) {
	c := NewColumn("Payment", []string{"£73,648", "$12.50", "99%", "1,202"})
	if c.Type != Numeric {
		t.Fatal("currency/percent column should be numeric")
	}
	if len(c.NumericExtent()) != 4 {
		t.Fatalf("parsed %d values, want 4", len(c.NumericExtent()))
	}
}

func TestTypeInferenceMixedStaysText(t *testing.T) {
	c := NewColumn("mixed", []string{"12", "abc", "def", "ghi", "jkl"})
	if c.Type != Text {
		t.Fatal("mostly-text column should be text")
	}
	if c.NumericExtent() != nil {
		t.Fatal("text column must not cache numeric extent")
	}
}

func TestTypeInferenceNullsIgnored(t *testing.T) {
	c := NewColumn("n", []string{"", "-", "null", "N/A", "5", "6"})
	if c.Type != Numeric {
		t.Fatal("nulls should not block numeric inference")
	}
}

func TestNullAndDistinctFractions(t *testing.T) {
	c := NewColumn("x", []string{"a", "a", "b", "", "-"})
	if got := c.NullFraction(); got != 0.4 {
		t.Fatalf("NullFraction = %v, want 0.4", got)
	}
	if got := c.DistinctFraction(); got != 2.0/3.0 {
		t.Fatalf("DistinctFraction = %v", got)
	}
	empty := NewColumn("e", nil)
	if empty.NullFraction() != 1 || empty.DistinctFraction() != 0 {
		t.Fatal("empty column edge cases")
	}
}

func TestNumericColumnFraction(t *testing.T) {
	s1 := figure1S1()
	if got := s1.NumericColumnFraction(); got != 0.2 {
		t.Fatalf("numeric fraction %v, want 0.2", got)
	}
}

func TestProject(t *testing.T) {
	s1 := figure1S1()
	p, err := s1.Project("proj", "City", "Postcode")
	if err != nil {
		t.Fatal(err)
	}
	if p.Arity() != 2 || p.Rows() != 2 || p.Columns[0].Name != "City" {
		t.Fatal("projection shape wrong")
	}
	if _, err := s1.Project("bad", "NoSuch"); err == nil {
		t.Fatal("expected error for unknown column")
	}
	// Mutating the projection must not affect the original.
	p.Columns[0].Values[0] = "CHANGED"
	if s1.Column("City").Values[0] == "CHANGED" {
		t.Fatal("projection aliases original storage")
	}
}

func TestSelectRows(t *testing.T) {
	s1 := figure1S1()
	sel, err := s1.SelectRows("sel", []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Rows() != 1 || sel.Column("City").Values[0] != "Salford" {
		t.Fatal("row selection wrong")
	}
	if _, err := s1.SelectRows("bad", []int{7}); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s1 := figure1S1()
	var buf bytes.Buffer
	if err := s1.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "S1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Arity() != s1.Arity() || got.Rows() != s1.Rows() {
		t.Fatal("round trip changed shape")
	}
	for i, c := range got.Columns {
		if !reflect.DeepEqual(c.Values, s1.Columns[i].Values) {
			t.Fatalf("column %d values differ", i)
		}
	}
}

func TestReadCSVRagged(t *testing.T) {
	in := "a,b,c\n1,2\n4,5,6,7\n"
	tb, err := ReadCSV(strings.NewReader(in), "ragged")
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 2 || tb.Column("c").Values[0] != "" || tb.Column("c").Values[1] != "6" {
		t.Fatalf("ragged handling wrong: %+v", tb.Column("c").Values)
	}
}

func TestLake(t *testing.T) {
	l := NewLake()
	id, err := l.Add(figure1S1())
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 || l.Len() != 1 {
		t.Fatal("lake bookkeeping wrong")
	}
	if _, err := l.Add(figure1S1()); err == nil {
		t.Fatal("expected duplicate-name error")
	}
	if got, ok := l.IDByName("S1"); !ok || got != 0 {
		t.Fatal("IDByName wrong")
	}
	if l.ByName("nope") != nil {
		t.Fatal("ByName should return nil for unknown")
	}
	if l.DataBytes() <= 0 {
		t.Fatal("DataBytes should be positive")
	}
}

func TestLakeDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := NewLake()
	if _, err := l.Add(figure1S1()); err != nil {
		t.Fatal(err)
	}
	t2, err := New("T2", []string{"x"}, [][]string{{"1"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Add(t2); err != nil {
		t.Fatal(err)
	}
	if err := SaveLakeDir(l, dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLakeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("loaded %d tables, want 2", got.Len())
	}
	if got.ByName("S1") == nil || got.ByName("T2") == nil {
		t.Fatal("names lost in round trip")
	}
	// Non-CSV files are ignored.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = LoadLakeDir(dir)
	if err != nil || got.Len() != 2 {
		t.Fatal("stray files should be ignored")
	}
}

func TestTypeString(t *testing.T) {
	if Text.String() != "text" || Numeric.String() != "numeric" {
		t.Fatal("Type.String wrong")
	}
	if Type(9).String() == "" {
		t.Fatal("unknown type should still print")
	}
}
