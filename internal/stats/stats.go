// Package stats provides the statistical primitives D3L relies on: the
// two-sample Kolmogorov–Smirnov statistic for numeric domain-distribution
// relatedness (the D evidence, Section III-C), empirical CDF/CCDF used
// by the Eq. 2 weighting scheme, and descriptive statistics backing the
// Fig. 2 repository profiles.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmptySample reports a KS computation over an empty extent.
var ErrEmptySample = errors.New("stats: empty sample")

// KolmogorovSmirnov computes the two-sample KS statistic
// sup_x |F1(x) − F2(x)| over the empirical CDFs of a and b.
// It is symmetric, bounded in [0, 1], and 0 iff the sorted multisets
// induce identical step functions. Inputs are not modified.
func KolmogorovSmirnov(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 1, ErrEmptySample
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	return KolmogorovSmirnovSorted(sa, sb)
}

// KolmogorovSmirnovSorted is KolmogorovSmirnov over samples the caller
// guarantees are already sorted ascending. It performs no allocations
// — the form the query hot path uses, with profile extents kept sorted
// from the moment they are built (there being no point re-sorting the
// same extent on every one of the O(candidates) distance computations
// it participates in).
func KolmogorovSmirnovSorted(sa, sb []float64) (float64, error) {
	if len(sa) == 0 || len(sb) == 0 {
		return 1, ErrEmptySample
	}
	var d float64
	i, j := 0, 0
	na, nb := float64(len(sa)), float64(len(sb))
	for i < len(sa) && j < len(sb) {
		x := sa[i]
		if sb[j] < x {
			x = sb[j]
		}
		for i < len(sa) && sa[i] <= x {
			i++
		}
		for j < len(sb) && sb[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/na - float64(j)/nb)
		if diff > d {
			d = diff
		}
	}
	return d, nil
}

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF; the input is copied.
func NewECDF(sample []float64) (*ECDF, error) {
	if len(sample) == 0 {
		return nil, ErrEmptySample
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// ECDFOf wraps an already-sorted sample as an ECDF value without
// copying — the allocation-free constructor backing the query arena,
// which lays every distribution's samples out in one recycled buffer.
// The caller must not mutate sorted while the ECDF is in use; an empty
// sample yields the zero ECDF (Len 0), which callers must treat as
// "no distribution" before evaluating it.
func ECDFOf(sorted []float64) ECDF {
	return ECDF{sorted: sorted}
}

// P returns P(X <= x).
func (e *ECDF) P(x float64) float64 {
	idx := sort.SearchFloat64s(e.sorted, x)
	// Advance over ties so P is right-continuous with <=.
	for idx < len(e.sorted) && e.sorted[idx] <= x {
		idx++
	}
	return float64(idx) / float64(len(e.sorted))
}

// CCDF returns the complementary CDF 1 − P(X <= x). This is exactly the
// weight w_it = 1 − P(d <= D_it) of Eq. 2: the probability that the
// observed distance is the smallest in the relatedness distribution R_t.
func (e *ECDF) CCDF(x float64) float64 { return 1 - e.P(x) }

// Len reports the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// Min returns the sample minimum.
func (e *ECDF) Min() float64 { return e.sorted[0] }

// Max returns the sample maximum.
func (e *ECDF) Max() float64 { return e.sorted[len(e.sorted)-1] }

// Summary holds descriptive statistics of a sample (Fig. 2 style).
type Summary struct {
	Count         int
	Mean, Std     float64
	Min, Max      float64
	P25, P50, P75 float64
	P90, P95, P99 float64
}

// Describe computes a Summary. It returns an error on empty input.
func Describe(sample []float64) (Summary, error) {
	if len(sample) == 0 {
		return Summary{}, ErrEmptySample
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	var sum, sq float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(len(s))
	for _, v := range s {
		sq += (v - mean) * (v - mean)
	}
	std := 0.0
	if len(s) > 1 {
		std = math.Sqrt(sq / float64(len(s)-1))
	}
	return Summary{
		Count: len(s),
		Mean:  mean, Std: std,
		Min: s[0], Max: s[len(s)-1],
		P25: Quantile(s, 0.25), P50: Quantile(s, 0.5), P75: Quantile(s, 0.75),
		P90: Quantile(s, 0.90), P95: Quantile(s, 0.95), P99: Quantile(s, 0.99),
	}, nil
}

// Quantile returns the q-quantile of a sorted sample by linear
// interpolation. q outside [0,1] is clamped.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// HistogramBins buckets a sample into n equal-width bins over [min,max],
// used by the Fig. 2 arity/cardinality profiles.
func HistogramBins(sample []float64, n int) (edges []float64, counts []int) {
	if len(sample) == 0 || n <= 0 {
		return nil, nil
	}
	lo, hi := sample[0], sample[0]
	for _, v := range sample {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	edges = make([]float64, n+1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	counts = make([]int, n)
	width := (hi - lo) / float64(n)
	for _, v := range sample {
		idx := int((v - lo) / width)
		if idx >= n {
			idx = n - 1
		}
		if idx < 0 {
			idx = 0
		}
		counts[idx]++
	}
	return edges, counts
}
