package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKSIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	d, err := KolmogorovSmirnov(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("KS(a,a) = %v, want 0", d)
	}
}

func TestKSDisjointSupports(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{100, 200, 300}
	d, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("KS over disjoint supports = %v, want 1", d)
	}
}

func TestKSEmptySample(t *testing.T) {
	if _, err := KolmogorovSmirnov(nil, []float64{1}); err != ErrEmptySample {
		t.Fatalf("got %v, want ErrEmptySample", err)
	}
}

func TestKSKnownValue(t *testing.T) {
	// F1 steps at 1,2; F2 steps at 2,3. At x=1: F1=0.5, F2=0 -> 0.5.
	a := []float64{1, 2}
	b := []float64{2, 3}
	d, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("KS = %v, want 0.5", d)
	}
}

func ksBrute(a, b []float64) float64 {
	points := append(append([]float64{}, a...), b...)
	var d float64
	for _, x := range points {
		f1 := ecdfAt(a, x)
		f2 := ecdfAt(b, x)
		if diff := math.Abs(f1 - f2); diff > d {
			d = diff
		}
	}
	return d
}

func ecdfAt(s []float64, x float64) float64 {
	n := 0
	for _, v := range s {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(s))
}

func TestKSAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		na, nb := 1+rng.Intn(40), 1+rng.Intn(40)
		a := make([]float64, na)
		b := make([]float64, nb)
		for i := range a {
			a[i] = math.Floor(rng.Float64() * 20) // ties on purpose
		}
		for i := range b {
			b[i] = math.Floor(rng.Float64()*20) + rng.Float64()*2
		}
		got, err := KolmogorovSmirnov(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := ksBrute(a, b)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: KS = %v, brute force = %v", trial, got, want)
		}
	}
}

func TestKSSymmetryProperty(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		a := make([]float64, 1+ra.Intn(30))
		b := make([]float64, 1+rb.Intn(30))
		for i := range a {
			a[i] = ra.NormFloat64()
		}
		for i := range b {
			b[i] = rb.NormFloat64() + 0.5
		}
		d1, err1 := KolmogorovSmirnov(a, b)
		d2, err2 := KolmogorovSmirnov(b, a)
		return err1 == nil && err2 == nil && math.Abs(d1-d2) < 1e-12 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKSSameDistributionSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	d, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.15 {
		t.Fatalf("same-distribution KS = %v, want small", d)
	}
}

func TestKSDifferentDistributionsLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()*0.3 + 5
	}
	d, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.9 {
		t.Fatalf("shifted-distribution KS = %v, want near 1", d)
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.P(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P(%v) = %v, want %v", c.x, got, c.want)
		}
		if got := e.CCDF(c.x); math.Abs(got-(1-c.want)) > 1e-12 {
			t.Errorf("CCDF(%v) = %v, want %v", c.x, got, 1-c.want)
		}
	}
	if e.Len() != 4 || e.Min() != 1 || e.Max() != 3 {
		t.Fatal("ECDF metadata wrong")
	}
}

func TestECDFEmpty(t *testing.T) {
	if _, err := NewECDF(nil); err != ErrEmptySample {
		t.Fatalf("got %v, want ErrEmptySample", err)
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := make([]float64, 1+rng.Intn(50))
		for i := range s {
			s[i] = rng.Float64() * 10
		}
		e, err := NewECDF(s)
		if err != nil {
			return false
		}
		prev := -1.0
		for x := -1.0; x <= 11; x += 0.5 {
			p := e.P(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDescribe(t *testing.T) {
	s, err := Describe([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("Describe wrong: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Std = %v", s.Std)
	}
	if _, err := Describe(nil); err != ErrEmptySample {
		t.Fatal("expected ErrEmptySample")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if q := Quantile(sorted, 0); q != 10 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(sorted, 1); q != 40 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(sorted, 0.5); math.Abs(q-25) > 1e-12 {
		t.Fatalf("q0.5 = %v, want 25", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestHistogramBins(t *testing.T) {
	sample := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	edges, counts := HistogramBins(sample, 5)
	if len(edges) != 6 || len(counts) != 5 {
		t.Fatalf("edges %d counts %d", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(sample) {
		t.Fatalf("histogram loses mass: %d != %d", total, len(sample))
	}
	if e, c := HistogramBins(nil, 5); e != nil || c != nil {
		t.Fatal("empty input should return nil")
	}
	// Constant sample must not divide by zero.
	_, counts = HistogramBins([]float64{3, 3, 3}, 4)
	total = 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Fatal("constant sample histogram loses mass")
	}
}

func TestQuantileAgainstSortInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := make([]float64, 2+rng.Intn(60))
		for i := range s {
			s[i] = rng.Float64() * 100
		}
		sort.Float64s(s)
		q1 := Quantile(s, 0.25)
		q2 := Quantile(s, 0.5)
		q3 := Quantile(s, 0.75)
		return q1 <= q2 && q2 <= q3 && q1 >= s[0] && q3 <= s[len(s)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKS1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 1000)
	y := make([]float64, 1000)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64() * 1.2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KolmogorovSmirnov(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
