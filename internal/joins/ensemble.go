package joins

import (
	"fmt"

	"d3l/internal/core"
	"d3l/internal/lsh"
)

// BuildGraphEnsemble builds the SA-join graph using an LSH Ensemble
// (Zhu, Nargesian, Pu, Miller; PVLDB 2016) over attribute tsets instead
// of the value forest. The paper cites LSH Ensemble as an improvement
// "compatible with our use case" for sets with skewed lengths — which
// is exactly the join-key situation: a small dimension table's subject
// attribute is *contained in* a large fact column, so Jaccard-tuned
// lookups miss it while containment-tuned partitions keep it.
func BuildGraphEnsemble(e *core.Engine, opts GraphOptions) (*Graph, error) {
	if opts.CandidateBudget <= 0 {
		opts.CandidateBudget = 256
	}
	lake := e.Lake()
	// Index every textual attribute with its tset cardinality.
	builder, err := lsh.NewEnsembleBuilder(e.Threshold(), e.Options().MinHashSize, 8)
	if err != nil {
		return nil, fmt.Errorf("joins: ensemble: %w", err)
	}
	for attrID := 0; attrID < e.NumAttributes(); attrID++ {
		p := e.Profile(attrID)
		if p.Numeric || p.TSize == 0 || !e.AliveTable(p.Ref.TableID) {
			continue
		}
		if err := builder.Add(int32(attrID), p.TSize, []uint64(p.TSig)); err != nil {
			return nil, fmt.Errorf("joins: ensemble add: %w", err)
		}
	}
	ensemble, err := builder.Build()
	if err != nil {
		return nil, fmt.Errorf("joins: ensemble build: %w", err)
	}

	g := &Graph{engine: e, adj: make(map[int][]Edge)}
	seen := make(map[[2]int]bool)
	for tid := 0; tid < lake.Len(); tid++ {
		if !e.AliveTable(tid) {
			continue // tombstoned by Engine.Remove
		}
		subj, ok := e.SubjectAttr(tid)
		if !ok {
			continue
		}
		sp := e.Profile(subj)
		if sp.Numeric || sp.TSize == 0 {
			continue
		}
		cands, err := ensemble.Query([]uint64(sp.TSig), sp.TSize)
		if err != nil {
			return nil, fmt.Errorf("joins: ensemble query: %w", err)
		}
		for _, cid := range cands {
			if int(cid) == subj {
				continue
			}
			cp := e.Profile(int(cid))
			otherTID := cp.Ref.TableID
			if otherTID == tid {
				continue
			}
			key := [2]int{tid, otherTID}
			if otherTID < tid {
				key = [2]int{otherTID, tid}
			}
			if seen[key] {
				continue
			}
			ov := e.OverlapCoefficient(sp, cp)
			if ov < overlapFloor(opts, e, sp, cp) {
				continue
			}
			seen[key] = true
			g.adj[tid] = append(g.adj[tid], Edge{From: tid, To: otherTID, FromAttr: subj, ToAttr: int(cid), Overlap: ov})
			g.adj[otherTID] = append(g.adj[otherTID], Edge{From: otherTID, To: tid, FromAttr: int(cid), ToAttr: subj, Overlap: ov})
			g.edges++
		}
	}
	return g, nil
}
