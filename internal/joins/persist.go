package joins

import (
	"fmt"
	"sort"

	"d3l/internal/core"
	"d3l/internal/persist"
)

// Encode serialises the SA-join graph's adjacency lists. Lists are
// written verbatim (both directions of every undirected edge, in their
// stored order), so a decoded graph enumerates neighbours — and hence
// Algorithm 3 join paths — exactly like the original: path discovery
// is order-sensitive, and re-deriving the order from overlaps would
// let sort ties reorder it.
func (g *Graph) Encode(b *persist.Buffer) {
	b.U64(uint64(g.edges))
	tids := make([]int, 0, len(g.adj))
	for tid := range g.adj {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	b.U32(uint32(len(tids)))
	for _, tid := range tids {
		b.I64(int64(tid))
		edges := g.adj[tid]
		b.U32(uint32(len(edges)))
		for _, e := range edges {
			b.I64(int64(e.From))
			b.I64(int64(e.To))
			b.I64(int64(e.FromAttr))
			b.I64(int64(e.ToAttr))
			b.F64(e.Overlap)
		}
	}
}

// DecodeGraph reconstructs a graph written by Encode over the given
// engine (the engine backs the path guards, not the adjacency itself).
// Table and attribute ids are validated against the engine so a
// corrupt snapshot cannot smuggle out-of-range ids into path
// discovery.
func DecodeGraph(r *persist.Reader, e *core.Engine) (*Graph, error) {
	numTables := e.Lake().Len()
	numAttrs := e.NumAttributes()
	g := &Graph{engine: e, adj: make(map[int][]Edge)}
	g.edges = int(r.U64())
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if g.edges < 0 || n < 0 || n > numTables {
		return nil, fmt.Errorf("%w: join graph declares %d adjacency lists, %d edges", persist.ErrCorrupt, n, g.edges)
	}
	for i := 0; i < n; i++ {
		tid := int(r.I64())
		m := int(r.U32())
		if err := r.Err(); err != nil {
			return nil, err
		}
		if tid < 0 || tid >= numTables {
			return nil, fmt.Errorf("%w: join graph table id %d of %d", persist.ErrCorrupt, tid, numTables)
		}
		// Each encoded edge is 4×I64 + F64 = 40 bytes; bounding the
		// allocation by that floor keeps a crafted count from
		// amplifying into a huge make([]Edge, m).
		if m < 0 || m > r.Remaining()/40 {
			return nil, fmt.Errorf("%w: table %d declares %d edges in %d bytes", persist.ErrCorrupt, tid, m, r.Remaining())
		}
		edges := make([]Edge, m)
		for j := range edges {
			edges[j] = Edge{
				From:     int(r.I64()),
				To:       int(r.I64()),
				FromAttr: int(r.I64()),
				ToAttr:   int(r.I64()),
				Overlap:  r.F64(),
			}
			if err := r.Err(); err != nil {
				return nil, err
			}
			ed := edges[j]
			if ed.From < 0 || ed.From >= numTables || ed.To < 0 || ed.To >= numTables ||
				ed.FromAttr < 0 || ed.FromAttr >= numAttrs || ed.ToAttr < 0 || ed.ToAttr >= numAttrs {
				return nil, fmt.Errorf("%w: join edge %d->%d (attrs %d->%d) out of range", persist.ErrCorrupt, ed.From, ed.To, ed.FromAttr, ed.ToAttr)
			}
		}
		if _, dup := g.adj[tid]; dup {
			return nil, fmt.Errorf("%w: duplicate adjacency list for table %d", persist.ErrCorrupt, tid)
		}
		g.adj[tid] = edges
	}
	return g, r.Err()
}
