package joins

import (
	"context"
	"errors"
	"testing"
)

// Cancellation contract for the join layer: a cancelled build or
// augmentation returns ctx.Err() and never a partial graph or partial
// path set.

func TestBuildGraphCtxCancelled(t *testing.T) {
	e := buildEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g, err := BuildGraphCtx(ctx, e, DefaultGraphOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if g != nil {
		t.Fatal("cancelled build returned a partial graph")
	}
}

func TestAugmentCtxCancelled(t *testing.T) {
	e := buildEngine(t)
	g := BuildGraph(e, DefaultGraphOptions())
	res, err := e.Search(joinTarget(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	augs, err := AugmentCtx(ctx, e, g, res, DefaultPathOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if augs != nil {
		t.Fatal("cancelled augment returned partial results")
	}
}

func TestFindJoinPathsCtxCancelled(t *testing.T) {
	e := buildEngine(t)
	g := BuildGraph(e, DefaultGraphOptions())
	res, err := e.Search(joinTarget(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	topK := []int{res.Ranked[0].TableID}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	paths, err := FindJoinPathsCtx(ctx, g, topK, res.TargetProfiles, DefaultPathOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if paths != nil {
		t.Fatal("cancelled traversal returned paths")
	}
}

// TestCtxVariantsMatchLegacy: with a background context the ctx-first
// functions are the legacy functions.
func TestCtxVariantsMatchLegacy(t *testing.T) {
	e := buildEngine(t)
	ctx := context.Background()
	gLegacy := BuildGraph(e, DefaultGraphOptions())
	gCtx, err := BuildGraphCtx(ctx, e, DefaultGraphOptions())
	if err != nil {
		t.Fatal(err)
	}
	if gLegacy.Edges() != gCtx.Edges() {
		t.Fatalf("edge counts diverge: legacy %d, ctx %d", gLegacy.Edges(), gCtx.Edges())
	}
	res, err := e.Search(joinTarget(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Augment(e, gLegacy, res, DefaultPathOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := AugmentCtx(ctx, e, gCtx, res, DefaultPathOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("augmented lengths diverge: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i].Result.Name != got[i].Result.Name ||
			want[i].BaseCoverage != got[i].BaseCoverage ||
			want[i].JoinCoverage != got[i].JoinCoverage ||
			len(want[i].Paths) != len(got[i].Paths) {
			t.Fatalf("augmented entry %d diverges: %+v vs %+v", i, want[i], got[i])
		}
	}
}
