// Package joins implements Section IV of the paper: extending
// relatedness through join paths. It builds the SA-join graph G_S over
// the lake (nodes are datasets, edges connect SA-joinable datasets),
// discovers join paths from the top-k tables with Algorithm 3, and
// computes the coverage measures of Eq. 4 and 5 that Experiments 8–11
// report.
package joins

import (
	"context"
	"fmt"
	"sort"

	"d3l/internal/core"
)

// GraphOptions configure SA-join graph construction.
type GraphOptions struct {
	// MinOverlap is the overlap-coefficient floor for an edge. The
	// paper derives ov ≥ τ(|A|+|B|)/((1+τ)·min(|A|,|B|)) from τ; with
	// the default τ = 0.7 and balanced sets this is ≈ 0.82, but join
	// keys have skewed cardinalities, so the bound against min(|A|,|B|)
	// is what matters. 0 selects the τ-derived bound per pair.
	MinOverlap float64
	// CandidateBudget caps I_V lookups per subject attribute.
	CandidateBudget int
}

// DefaultGraphOptions returns paper-faithful settings.
func DefaultGraphOptions() GraphOptions {
	return GraphOptions{MinOverlap: 0, CandidateBudget: 256}
}

// Edge is one SA-join opportunity between two tables.
type Edge struct {
	From, To         int // table ids
	FromAttr, ToAttr int // attribute ids
	Overlap          float64
}

// Graph is the SA-join graph G_S = (S, I).
type Graph struct {
	engine *core.Engine
	adj    map[int][]Edge
	edges  int
}

// BuildGraph constructs G_S: for every table's subject attribute, the
// value index proposes overlap candidates; an edge appears when the
// estimated overlap coefficient clears the bound and at least one
// endpoint is a subject attribute (the two SA-joinability conditions).
func BuildGraph(e *core.Engine, opts GraphOptions) *Graph {
	// A background context cannot cancel, so the error is unreachable.
	g, _ := BuildGraphCtx(context.Background(), e, opts)
	return g
}

// BuildGraphCtx is BuildGraph with cooperative cancellation: the build
// checks ctx between tables and returns ctx.Err() with no graph when
// cancelled — a partial graph is never handed out.
func BuildGraphCtx(ctx context.Context, e *core.Engine, opts GraphOptions) (*Graph, error) {
	if opts.CandidateBudget <= 0 {
		opts.CandidateBudget = 256
	}
	g := &Graph{engine: e, adj: make(map[int][]Edge)}
	lake := e.Lake()
	seen := make(map[[2]int]bool) // undirected table-pair dedup
	for tid := 0; tid < lake.Len(); tid++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !e.AliveTable(tid) {
			continue // tombstoned by Engine.Remove
		}
		subj, ok := e.SubjectAttr(tid)
		if !ok {
			continue
		}
		sp := e.Profile(subj)
		for _, candID := range e.VCandidates(subj, opts.CandidateBudget) {
			cp := e.Profile(candID)
			otherTID := cp.Ref.TableID
			if otherTID == tid || !e.AliveTable(otherTID) {
				continue
			}
			key := [2]int{tid, otherTID}
			if otherTID < tid {
				key = [2]int{otherTID, tid}
			}
			if seen[key] {
				continue
			}
			ov := e.OverlapCoefficient(sp, cp)
			if ov < overlapFloor(opts, e, sp, cp) {
				continue
			}
			seen[key] = true
			g.adj[tid] = append(g.adj[tid], Edge{From: tid, To: otherTID, FromAttr: subj, ToAttr: candID, Overlap: ov})
			g.adj[otherTID] = append(g.adj[otherTID], Edge{From: otherTID, To: tid, FromAttr: candID, ToAttr: subj, Overlap: ov})
			g.edges++
		}
	}
	for tid := range g.adj {
		sort.Slice(g.adj[tid], func(i, j int) bool { return g.adj[tid][i].Overlap > g.adj[tid][j].Overlap })
	}
	return g, nil
}

// overlapFloor resolves the per-pair overlap threshold.
func overlapFloor(opts GraphOptions, e *core.Engine, a, b *core.Profile) float64 {
	if opts.MinOverlap > 0 {
		return opts.MinOverlap
	}
	tau := e.Threshold()
	na, nb := float64(a.TSize), float64(b.TSize)
	if na == 0 || nb == 0 {
		return 1
	}
	m := na
	if nb < na {
		m = nb
	}
	bound := tau * (na + nb) / ((1 + tau) * m)
	if bound > 1 {
		bound = 1
	}
	// The inclusion-exclusion bound assumes the pair was retrieved at
	// τ; relax slightly to absorb MinHash estimation error.
	return bound * 0.85
}

// Neighbours returns the edges incident to a table.
func (g *Graph) Neighbours(tid int) []Edge { return g.adj[tid] }

// Edges reports the number of undirected edges.
func (g *Graph) Edges() int { return g.edges }

// Path is a join path: table ids starting at a top-k table.
type Path []int

// PathOptions bound Algorithm 3's traversal.
type PathOptions struct {
	// MaxDepth caps the path length including the start (default 4).
	MaxDepth int
	// MaxPathsPerStart caps the paths collected per top-k table
	// (default 64): SA-join graphs over open data are dense.
	MaxPathsPerStart int
}

// DefaultPathOptions returns the default bounds.
func DefaultPathOptions() PathOptions {
	return PathOptions{MaxDepth: 4, MaxPathsPerStart: 64}
}

// FindJoinPaths runs Algorithm 3 from each top-k table: depth-first
// traversal of G_S collecting paths whose nodes (apart from the start)
// are outside the top-k, acyclic, and related to the target by at least
// one index.
func FindJoinPaths(g *Graph, topK []int, targetProfiles []core.Profile, opts PathOptions) map[int][]Path {
	out, _ := FindJoinPathsCtx(context.Background(), g, topK, targetProfiles, opts)
	return out
}

// FindJoinPathsCtx is FindJoinPaths with cooperative cancellation: the
// traversal checks ctx between DFS nodes (the target-relatedness guard
// behind each node is the expensive step) and returns ctx.Err() with
// no paths when cancelled.
func FindJoinPathsCtx(ctx context.Context, g *Graph, topK []int, targetProfiles []core.Profile, opts PathOptions) (map[int][]Path, error) {
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 4
	}
	if opts.MaxPathsPerStart <= 0 {
		opts.MaxPathsPerStart = 64
	}
	inTopK := make(map[int]bool, len(topK))
	for _, tid := range topK {
		inTopK[tid] = true
	}
	// Cache the per-table target-relatedness guard: it is the expensive
	// test and tables recur across starts.
	relCache := make(map[int]bool)
	relatedToTarget := func(tid int) bool {
		if v, ok := relCache[tid]; ok {
			return v
		}
		v := g.engine.TableRelatedToTarget(tid, targetProfiles)
		relCache[tid] = v
		return v
	}
	out := make(map[int][]Path, len(topK))
	for _, start := range topK {
		var paths []Path
		var dfs func(node int, path Path)
		dfs = func(node int, path Path) {
			if ctx.Err() != nil {
				return
			}
			if len(paths) >= opts.MaxPathsPerStart || len(path) >= opts.MaxDepth {
				return
			}
			for _, edge := range g.Neighbours(node) {
				ni := edge.To
				if inTopK[ni] || contains(path, ni) || !relatedToTarget(ni) {
					continue
				}
				next := append(append(Path{}, path...), ni)
				paths = append(paths, next)
				if len(paths) >= opts.MaxPathsPerStart {
					return
				}
				dfs(ni, next)
			}
		}
		dfs(start, Path{start})
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out[start] = paths
	}
	return out, nil
}

func contains(p Path, tid int) bool {
	for _, t := range p {
		if t == tid {
			return true
		}
	}
	return false
}

// Coverage computes the Eq. 4 coverage of a single table on the target:
// the fraction of target columns related to some attribute of the
// table.
func Coverage(e *core.Engine, targetProfiles []core.Profile, tableID int) float64 {
	if len(targetProfiles) == 0 {
		return 0
	}
	covered := e.RelatedTargetColumns(tableID, targetProfiles)
	return float64(len(covered)) / float64(len(targetProfiles))
}

// JoinCoverage computes the Eq. 5 combined coverage of a top-k table
// and all its join paths: the union of covered target columns over the
// start table and every table on every path.
func JoinCoverage(e *core.Engine, targetProfiles []core.Profile, start int, paths []Path) float64 {
	if len(targetProfiles) == 0 {
		return 0
	}
	covered := e.RelatedTargetColumns(start, targetProfiles)
	for _, p := range paths {
		for _, tid := range p {
			for col := range e.RelatedTargetColumns(tid, targetProfiles) {
				covered[col] = true
			}
		}
	}
	return float64(len(covered)) / float64(len(targetProfiles))
}

// Augmented pairs one top-k result with its discovered join paths and
// both coverage figures.
type Augmented struct {
	Result       core.TableResult
	Paths        []Path
	BaseCoverage float64 // Eq. 4
	JoinCoverage float64 // Eq. 5
}

// Augment runs the full D3L+J pipeline on a search result: build (or
// reuse) the SA-join graph, find join paths per top-k table, and
// compute coverage with and without joins.
func Augment(e *core.Engine, g *Graph, res *core.SearchResult, popts PathOptions) ([]Augmented, error) {
	return AugmentCtx(context.Background(), e, g, res, popts)
}

// AugmentCtx is Augment with cooperative cancellation: ctx is honoured
// through the path traversal and between the per-result coverage
// computations, and a cancelled call returns ctx.Err() with no partial
// augmentation.
func AugmentCtx(ctx context.Context, e *core.Engine, g *Graph, res *core.SearchResult, popts PathOptions) ([]Augmented, error) {
	if res == nil {
		return nil, fmt.Errorf("joins: nil search result")
	}
	topK := make([]int, len(res.Ranked))
	for i, r := range res.Ranked {
		topK[i] = r.TableID
	}
	pathsByStart, err := FindJoinPathsCtx(ctx, g, topK, res.TargetProfiles, popts)
	if err != nil {
		return nil, err
	}
	out := make([]Augmented, len(res.Ranked))
	for i, r := range res.Ranked {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		paths := pathsByStart[r.TableID]
		out[i] = Augmented{
			Result:       r,
			Paths:        paths,
			BaseCoverage: Coverage(e, res.TargetProfiles, r.TableID),
			JoinCoverage: JoinCoverage(e, res.TargetProfiles, r.TableID, paths),
		}
	}
	return out, nil
}

// ContributedTables returns the distinct non-top-k tables reachable via
// the join paths of an augmented answer — the extra datasets D3L+J
// would hand to downstream wrangling.
func ContributedTables(augs []Augmented) []int {
	inTopK := make(map[int]bool, len(augs))
	for _, a := range augs {
		inTopK[a.Result.TableID] = true
	}
	seen := make(map[int]bool)
	var out []int
	for _, a := range augs {
		for _, p := range a.Paths {
			for _, tid := range p {
				if !inTopK[tid] && !seen[tid] {
					seen[tid] = true
					out = append(out, tid)
				}
			}
		}
	}
	sort.Ints(out)
	return out
}
