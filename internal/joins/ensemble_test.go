package joins

import (
	"testing"

	"d3l/internal/core"
	"d3l/internal/table"
)

func TestBuildGraphEnsembleFindsJoins(t *testing.T) {
	e := buildEngine(t)
	g, err := BuildGraphEnsemble(e, DefaultGraphOptions())
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges() == 0 {
		t.Fatal("ensemble-backed graph has no edges")
	}
	s1, _ := e.Lake().IDByName("S1")
	n1, _ := e.Lake().IDByName("N1")
	for _, edge := range g.Neighbours(n1) {
		if edge.To == s1 {
			t.Fatal("noise should not join practice tables")
		}
	}
}

// TestEnsembleGraphFindsSkewedContainment builds the case LSH Ensemble
// exists for: a small dimension table whose subject attribute is fully
// contained in a much larger fact column. Jaccard between the two sets
// is small (|∩|/|∪| ≈ |dim|/|fact|), but containment is 1.
func TestEnsembleGraphFindsSkewedContainment(t *testing.T) {
	lake := table.NewLake()
	// Small dimension table: 8 practices.
	dimRows := make([][]string, 8)
	names := []string{"Blackfriars", "Radclife Care", "Bolton Medical", "Oak Tree Surgery",
		"Elm Grove Practice", "The London Clinic", "Firs Surgery", "Yew Practice"}
	for i, n := range names {
		dimRows[i] = []string{n, itoa(1000 + i)}
	}
	dim, err := table.New("dim", []string{"Practice", "Patients"}, dimRows)
	if err != nil {
		t.Fatal(err)
	}
	// Large fact table: every practice appears plus 200 extra entities.
	factRows := make([][]string, 0, 240)
	for rep := 0; rep < 2; rep++ {
		for i, n := range names {
			factRows = append(factRows, []string{n, itoa(i*7 + rep)})
		}
	}
	for i := 0; i < 200; i++ {
		factRows = append(factRows, []string{"Visitor Clinic " + itoa(i), itoa(i)})
	}
	fact, err := table.New("fact", []string{"Provider", "Visits"}, factRows)
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range []*table.Table{dim, fact} {
		if _, err := lake.Add(tb); err != nil {
			t.Fatal(err)
		}
	}
	opts := core.DefaultOptions()
	opts.MaxExtentSample = 0
	e, err := core.BuildEngine(lake, opts)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraphEnsemble(e, GraphOptions{MinOverlap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	dimID, _ := lake.IDByName("dim")
	factID, _ := lake.IDByName("fact")
	found := false
	for _, edge := range g.Neighbours(dimID) {
		if edge.To == factID {
			found = true
			if edge.Overlap < 0.5 {
				t.Fatalf("containment edge overlap %v, want high", edge.Overlap)
			}
		}
	}
	if !found {
		t.Fatal("ensemble graph missed the contained join key")
	}
}

func TestEnsembleGraphAgreesWithForestOnBalancedSets(t *testing.T) {
	e := buildEngine(t)
	forest := BuildGraph(e, DefaultGraphOptions())
	ens, err := BuildGraphEnsemble(e, DefaultGraphOptions())
	if err != nil {
		t.Fatal(err)
	}
	// On the balanced fixture the two constructions should find joins
	// between the same practice tables (exact edge sets may differ).
	s2, _ := e.Lake().IDByName("S2")
	if len(forest.Neighbours(s2)) > 0 && len(ens.Neighbours(s2)) == 0 {
		t.Fatal("ensemble graph lost all edges the forest graph found for S2")
	}
}
