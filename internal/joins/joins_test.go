package joins

import (
	"testing"

	"d3l/internal/core"
	"d3l/internal/table"
)

func mustTable(t testing.TB, name string, cols []string, rows [][]string) *table.Table {
	t.Helper()
	tb, err := table.New(name, cols, rows)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// joinLake models the paper's Figure 1 join scenario: S1 and S2 are
// strongly related to the target; S3 is weakly related but joins with
// them on practice names and contributes the Hours column.
func joinLake(t testing.TB) *table.Lake {
	lake := table.NewLake()
	add := func(tb *table.Table) {
		t.Helper()
		if _, err := lake.Add(tb); err != nil {
			t.Fatal(err)
		}
	}
	practices := []string{"Blackfriars", "Radclife Care", "Bolton Medical", "Oak Tree Surgery", "Elm Grove Practice", "The London Clinic"}
	cities := []string{"Salford", "Manchester", "Bolton", "Leeds", "Sheffield", "London"}
	postcodes := []string{"M3 6AF", "M26 2SP", "BL3 6PY", "LS1 4AP", "S1 2HE", "W1G 6BW"}
	hours := []string{"08:00-18:00", "07:00-20:00", "08:00-16:00", "09:00-17:00", "08:30-18:30", "07:30-19:00"}

	s1 := make([][]string, len(practices))
	s2 := make([][]string, len(practices))
	s3 := make([][]string, len(practices))
	for i := range practices {
		s1[i] = []string{practices[i], cities[i], postcodes[i], itoa(1000 + i*317)}
		s2[i] = []string{practices[i], cities[i], itoa(15000 + i*1111)}
		s3[i] = []string{practices[i], hours[i]}
	}
	add(mustTable(t, "S1", []string{"Practice Name", "City", "Postcode", "Patients"}, s1))
	add(mustTable(t, "S2", []string{"Practice", "City", "Payment"}, s2))
	add(mustTable(t, "S3", []string{"GP", "Opening hours"}, s3))
	// Unrelated noise that joins with nothing.
	add(mustTable(t, "N1", []string{"Species", "Habitat"}, [][]string{
		{"Kestrel", "farmland"}, {"Barn Owl", "grassland"}, {"Goshawk", "woodland"},
	}))
	return lake
}

func joinTarget(t testing.TB) *table.Table {
	return mustTable(t, "T", []string{"Practice", "City", "Postcode", "Hours"},
		[][]string{
			{"Radclife Care", "Manchester", "M26 2SP", "07:00-20:00"},
			{"Bolton Medical", "Bolton", "BL3 6PY", "08:00-16:00"},
		})
}

func buildEngine(t testing.TB) *core.Engine {
	opts := core.DefaultOptions()
	opts.MaxExtentSample = 128
	e, err := core.BuildEngine(joinLake(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBuildGraphFindsSAJoins(t *testing.T) {
	e := buildEngine(t)
	g := BuildGraph(e, DefaultGraphOptions())
	if g.Edges() == 0 {
		t.Fatal("join graph has no edges; expected S1-S2-S3 joins on practice names")
	}
	s1, _ := e.Lake().IDByName("S1")
	s2, _ := e.Lake().IDByName("S2")
	s3, _ := e.Lake().IDByName("S3")
	n1, _ := e.Lake().IDByName("N1")
	connected := func(a, b int) bool {
		for _, edge := range g.Neighbours(a) {
			if edge.To == b {
				return true
			}
		}
		return false
	}
	if !connected(s1, s2) && !connected(s1, s3) && !connected(s2, s3) {
		t.Fatal("none of the practice tables are connected")
	}
	for _, other := range []int{s1, s2, s3} {
		if connected(n1, other) {
			t.Fatal("noise table should not join practice tables")
		}
	}
	// Edges carry sane overlaps and symmetric adjacency.
	for _, edge := range g.Neighbours(s1) {
		if edge.Overlap <= 0 || edge.Overlap > 1 {
			t.Fatalf("edge overlap %v out of range", edge.Overlap)
		}
		back := false
		for _, rev := range g.Neighbours(edge.To) {
			if rev.To == s1 {
				back = true
			}
		}
		if !back {
			t.Fatal("adjacency not symmetric")
		}
	}
}

func TestFindJoinPathsAlgorithm3(t *testing.T) {
	e := buildEngine(t)
	g := BuildGraph(e, DefaultGraphOptions())
	res, err := e.Search(joinTarget(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	topK := []int{res.Ranked[0].TableID, res.Ranked[1].TableID}
	paths := FindJoinPaths(g, topK, res.TargetProfiles, DefaultPathOptions())
	total := 0
	for _, ps := range paths {
		for _, p := range ps {
			total++
			if len(p) < 2 {
				t.Fatalf("path too short: %v", p)
			}
			if p[0] != topK[0] && p[0] != topK[1] {
				t.Fatalf("path does not start at a top-k table: %v", p)
			}
			// No cycles.
			seen := map[int]bool{}
			for _, tid := range p {
				if seen[tid] {
					t.Fatalf("cyclic path: %v", p)
				}
				seen[tid] = true
			}
			// Non-start nodes are outside top-k.
			for _, tid := range p[1:] {
				if tid == topK[0] || tid == topK[1] {
					t.Fatalf("path revisits top-k: %v", p)
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no join paths found; S3 should be reachable")
	}
}

func TestJoinCoverageImproves(t *testing.T) {
	e := buildEngine(t)
	g := BuildGraph(e, DefaultGraphOptions())
	// k=2: S1 and S2 are the strongly related tables; S3 (hours) should
	// be reachable only through joins.
	res, err := e.Search(joinTarget(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	augs, err := Augment(e, g, res, DefaultPathOptions())
	if err != nil {
		t.Fatal(err)
	}
	anyImproved := false
	for _, a := range augs {
		if a.JoinCoverage < a.BaseCoverage {
			t.Fatalf("join coverage %v below base %v", a.JoinCoverage, a.BaseCoverage)
		}
		if a.JoinCoverage > a.BaseCoverage {
			anyImproved = true
		}
		if a.BaseCoverage < 0 || a.JoinCoverage > 1 {
			t.Fatal("coverage out of range")
		}
	}
	if !anyImproved {
		t.Fatal("joins should improve coverage (S3 contributes Hours)")
	}
}

func TestContributedTables(t *testing.T) {
	e := buildEngine(t)
	g := BuildGraph(e, DefaultGraphOptions())
	res, err := e.Search(joinTarget(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	augs, err := Augment(e, g, res, DefaultPathOptions())
	if err != nil {
		t.Fatal(err)
	}
	contributed := ContributedTables(augs)
	s3, _ := e.Lake().IDByName("S3")
	found := false
	for _, tid := range contributed {
		if tid == s3 {
			found = true
		}
		for _, a := range augs {
			if a.Result.TableID == tid {
				t.Fatal("contributed table is already in top-k")
			}
		}
	}
	if !found {
		t.Fatalf("S3 (id %d) should be contributed via joins, got %v", s3, contributed)
	}
}

func TestAugmentValidation(t *testing.T) {
	e := buildEngine(t)
	g := BuildGraph(e, DefaultGraphOptions())
	if _, err := Augment(e, g, nil, DefaultPathOptions()); err == nil {
		t.Fatal("expected error for nil result")
	}
}

func TestCoverageEmptyTarget(t *testing.T) {
	e := buildEngine(t)
	if Coverage(e, nil, 0) != 0 || JoinCoverage(e, nil, 0, nil) != 0 {
		t.Fatal("empty target coverage should be 0")
	}
}

func TestPathOptionBounds(t *testing.T) {
	e := buildEngine(t)
	g := BuildGraph(e, DefaultGraphOptions())
	res, err := e.Search(joinTarget(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	topK := []int{res.Ranked[0].TableID}
	paths := FindJoinPaths(g, topK, res.TargetProfiles, PathOptions{MaxDepth: 2, MaxPathsPerStart: 1})
	for _, ps := range paths {
		if len(ps) > 1 {
			t.Fatalf("MaxPathsPerStart violated: %d paths", len(ps))
		}
		for _, p := range ps {
			if len(p) > 2 {
				t.Fatalf("MaxDepth violated: %v", p)
			}
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}
