// Package minhash implements MinHash signatures (Broder, SEQUENCES 1997)
// over string sets, the locality-sensitive sketch D3L uses for its
// Jaccard-grounded evidence types (names, values, formats).
//
// A Signature summarises a set with k 64-bit minimum hash values. The
// probability that two signatures agree at a given position equals the
// Jaccard similarity of the underlying sets, so the fraction of agreeing
// positions is an unbiased estimator of Jaccard similarity with standard
// error O(1/sqrt(k)).
package minhash

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
)

// DefaultSize is the signature width used throughout the paper's
// evaluation (Section V, footnote 5: "a MinHash size of 256").
const DefaultSize = 256

// mersennePrime is 2^61-1, used for universal hashing. Multiplication of
// two values below 2^61 overflows uint64, so we reduce operands first;
// see permute.
const mersennePrime = (1 << 61) - 1

// Hasher derives a family of k pairwise-independent hash permutations
// from a seed. It is immutable and safe for concurrent use.
type Hasher struct {
	size int
	a    []uint64 // multipliers, odd, < mersennePrime
	b    []uint64 // offsets, < mersennePrime
}

// NewHasher returns a Hasher producing signatures of the given width.
// The family is deterministic in seed, so signatures created by
// different processes with the same seed are comparable.
func NewHasher(size int, seed uint64) (*Hasher, error) {
	if size <= 0 {
		return nil, fmt.Errorf("minhash: signature size must be positive, got %d", size)
	}
	h := &Hasher{
		size: size,
		a:    make([]uint64, size),
		b:    make([]uint64, size),
	}
	rng := splitMix64(seed)
	for i := 0; i < size; i++ {
		// Draw a in [1, p-1] and b in [0, p-1].
		a := rng() % (mersennePrime - 1)
		h.a[i] = a + 1
		h.b[i] = rng() % mersennePrime
	}
	return h, nil
}

// MustHasher is NewHasher for static configuration; it panics on a
// non-positive size.
func MustHasher(size int, seed uint64) *Hasher {
	h, err := NewHasher(size, seed)
	if err != nil {
		panic(err)
	}
	return h
}

// Size reports the signature width produced by the Hasher.
func (h *Hasher) Size() int { return h.size }

// Signature is a MinHash sketch of a set.
type Signature []uint64

// Empty reports whether the signature was computed from an empty set.
// Empty signatures have every slot at the maximum value.
func (s Signature) Empty() bool {
	for _, v := range s {
		if v != math.MaxUint64 {
			return false
		}
	}
	return true
}

// Clone returns a copy of the signature.
func (s Signature) Clone() Signature {
	c := make(Signature, len(s))
	copy(c, s)
	return c
}

// NewSignature returns the signature of the empty set (all slots maxed)
// ready for incremental Update calls.
func (h *Hasher) NewSignature() Signature {
	s := make(Signature, h.size)
	for i := range s {
		s[i] = math.MaxUint64
	}
	return s
}

// baseHash maps an element to a 64-bit value below the Mersenne prime.
func baseHash(element string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(element)) // fnv never errors
	return f.Sum64() % mersennePrime
}

// permute applies the i-th universal hash function to x (< p).
// (a*x+b) mod p with p = 2^61-1, computed with 128-bit style splitting
// to avoid overflow.
func (h *Hasher) permute(i int, x uint64) uint64 {
	return (mulmod(h.a[i], x) + h.b[i]) % mersennePrime
}

// mulmod computes (a*b) mod (2^61-1) without overflow using math/bits
// style decomposition. a, b < 2^61.
func mulmod(a, b uint64) uint64 {
	// Split a into high and low 31/30-bit halves: a = ah*2^31 + al.
	const half = 1 << 31
	ah, al := a/half, a%half
	bh, bl := b/half, b%half
	// a*b = ah*bh*2^62 + (ah*bl+al*bh)*2^31 + al*bl
	// Reduce each term mod 2^61-1, using 2^61 ≡ 1, so 2^62 ≡ 2.
	t1 := (ah * bh % mersennePrime) * 2 % mersennePrime
	mid := (ah*bl + al*bh) % mersennePrime
	// mid*2^31 mod p: 2^31 < p so repeated doubling is too slow; use
	// decomposition: mid*2^31 = (mid << 31) may overflow only if
	// mid >= 2^33; reduce by splitting mid similarly.
	mh, ml := mid/(1<<30), mid%(1<<30)
	// mid*2^31 = mh*2^61 + ml*2^31 ≡ mh + ml*2^31 (mod p); ml < 2^30 so
	// ml<<31 < 2^61, no overflow.
	t2 := (mh + ml<<31) % mersennePrime
	t3 := (al * bl) % mersennePrime
	return (t1 + t2 + t3) % mersennePrime
}

// Update folds a single element into the signature in place.
func (h *Hasher) Update(s Signature, element string) {
	if len(s) != h.size {
		panic(fmt.Sprintf("minhash: signature size %d does not match hasher size %d", len(s), h.size))
	}
	x := baseHash(element)
	for i := 0; i < h.size; i++ {
		if v := h.permute(i, x); v < s[i] {
			s[i] = v
		}
	}
}

// Sketch computes the signature of a set given as a slice of elements.
// Duplicate elements are harmless (MinHash is a set operation).
func (h *Hasher) Sketch(elements []string) Signature {
	s := h.NewSignature()
	for _, e := range elements {
		h.Update(s, e)
	}
	return s
}

// SketchSet computes the signature of a set given as a map.
func (h *Hasher) SketchSet(set map[string]struct{}) Signature {
	s := h.NewSignature()
	for e := range set {
		h.Update(s, e)
	}
	return s
}

// ErrSizeMismatch reports signatures of different widths.
var ErrSizeMismatch = errors.New("minhash: signature sizes differ")

// Similarity estimates the Jaccard similarity of the sets underlying
// two signatures as the fraction of agreeing slots.
func Similarity(a, b Signature) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrSizeMismatch
	}
	if len(a) == 0 {
		return 0, errors.New("minhash: empty signatures")
	}
	// Re-slicing b to a's length lets the compiler elide the bounds
	// check on b[i]: this comparison loop is the innermost kernel of
	// every pair distance the query pipeline computes, and it must stay
	// branch-lean and allocation-free.
	b = b[:len(a)]
	equal := 0
	for i := range a {
		if a[i] == b[i] {
			equal++
		}
	}
	return float64(equal) / float64(len(a)), nil
}

// Distance estimates the Jaccard distance (1 - similarity).
func Distance(a, b Signature) (float64, error) {
	sim, err := Similarity(a, b)
	if err != nil {
		return 1, err
	}
	return 1 - sim, nil
}

// Merge combines two signatures into the signature of the union of the
// underlying sets, writing into dst. All three must share a width.
func Merge(dst, a, b Signature) error {
	if len(a) != len(b) || len(dst) != len(a) {
		return ErrSizeMismatch
	}
	for i := range dst {
		if a[i] < b[i] {
			dst[i] = a[i]
		} else {
			dst[i] = b[i]
		}
	}
	return nil
}

// Union returns a fresh signature of the union of the underlying sets.
func Union(a, b Signature) (Signature, error) {
	dst := make(Signature, len(a))
	if err := Merge(dst, a, b); err != nil {
		return nil, err
	}
	return dst, nil
}

// Bytes serialises the signature in little-endian order, 8 bytes per
// slot. Used by the experiment harness to account index space (Table II).
func (s Signature) Bytes() []byte {
	buf := make([]byte, 8*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint64(buf[i*8:], v)
	}
	return buf
}

// FromBytes reconstructs a signature serialised by Bytes.
func FromBytes(buf []byte) (Signature, error) {
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("minhash: serialized signature length %d not a multiple of 8", len(buf))
	}
	s := make(Signature, len(buf)/8)
	for i := range s {
		s[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return s, nil
}

// MarshalBinary implements encoding.BinaryMarshaler with the Bytes
// layout. The engine snapshot encodes signatures inline as raw uint64
// slices for speed; these methods exist for external tooling that
// wants the standard encoding interfaces (gob, caches, wire formats).
func (s Signature) MarshalBinary() ([]byte, error) { return s.Bytes(), nil }

// UnmarshalBinary implements encoding.BinaryUnmarshaler, the decode
// half of MarshalBinary.
func (s *Signature) UnmarshalBinary(buf []byte) error {
	sig, err := FromBytes(buf)
	if err != nil {
		return err
	}
	*s = sig
	return nil
}

// splitMix64 returns a deterministic 64-bit pseudo-random generator used
// to derive the hash family. SplitMix64 is the standard seeding PRNG for
// reproducible simulation (Steele et al.).
func splitMix64(seed uint64) func() uint64 {
	state := seed
	return func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}
