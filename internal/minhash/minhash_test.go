package minhash

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func exactJaccard(a, b []string) float64 {
	sa := make(map[string]struct{}, len(a))
	for _, x := range a {
		sa[x] = struct{}{}
	}
	sb := make(map[string]struct{}, len(b))
	for _, x := range b {
		sb[x] = struct{}{}
	}
	inter := 0
	for x := range sa {
		if _, ok := sb[x]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func TestNewHasherRejectsBadSize(t *testing.T) {
	if _, err := NewHasher(0, 1); err == nil {
		t.Fatal("expected error for size 0")
	}
	if _, err := NewHasher(-5, 1); err == nil {
		t.Fatal("expected error for negative size")
	}
}

func TestMustHasherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustHasher(0, 1)
}

func TestDeterminism(t *testing.T) {
	h1 := MustHasher(64, 42)
	h2 := MustHasher(64, 42)
	s1 := h1.Sketch([]string{"alpha", "beta", "gamma"})
	s2 := h2.Sketch([]string{"gamma", "alpha", "beta"})
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("signatures differ at slot %d: %d vs %d", i, s1[i], s2[i])
		}
	}
}

func TestSeedChangesFamily(t *testing.T) {
	a := MustHasher(64, 1).Sketch([]string{"alpha"})
	b := MustHasher(64, 2).Sketch([]string{"alpha"})
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical hash families")
	}
}

func TestIdenticalSetsSimilarityOne(t *testing.T) {
	h := MustHasher(128, 7)
	s := h.Sketch([]string{"a", "b", "c", "d"})
	sim, err := Similarity(s, s)
	if err != nil {
		t.Fatal(err)
	}
	if sim != 1 {
		t.Fatalf("self-similarity = %v, want 1", sim)
	}
}

func TestDisjointSetsLowSimilarity(t *testing.T) {
	h := MustHasher(256, 7)
	a := make([]string, 200)
	b := make([]string, 200)
	for i := range a {
		a[i] = "left-" + string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('A'+i/26))
		b[i] = "right-" + string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('A'+i/26))
	}
	sim, err := Similarity(h.Sketch(a), h.Sketch(b))
	if err != nil {
		t.Fatal(err)
	}
	if sim > 0.05 {
		t.Fatalf("disjoint sets estimated similarity %v, want near 0", sim)
	}
}

func TestEstimateTracksExactJaccard(t *testing.T) {
	h := MustHasher(256, 99)
	rng := rand.New(rand.NewSource(5))
	vocab := make([]string, 500)
	for i := range vocab {
		vocab[i] = "tok" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
	}
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(200)
		overlapFrac := rng.Float64()
		var a, b []string
		for i := 0; i < n; i++ {
			tok := vocab[rng.Intn(len(vocab))]
			a = append(a, tok)
			if rng.Float64() < overlapFrac {
				b = append(b, tok)
			} else {
				b = append(b, vocab[rng.Intn(len(vocab))])
			}
		}
		exact := exactJaccard(a, b)
		est, err := Similarity(h.Sketch(a), h.Sketch(b))
		if err != nil {
			t.Fatal(err)
		}
		// Standard error with 256 slots is sqrt(J(1-J)/256) <= 0.032; allow 4 sigma.
		if math.Abs(est-exact) > 0.13 {
			t.Fatalf("trial %d: estimate %v too far from exact %v", trial, est, exact)
		}
	}
}

func TestEstimateTracksExactJaccardProperty(t *testing.T) {
	h := MustHasher(256, 123)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(100)
		shared := rng.Intn(n)
		var a, b []string
		for i := 0; i < shared; i++ {
			tok := "s" + itoa(i) + "-" + itoa(int(seed%977))
			a = append(a, tok)
			b = append(b, tok)
		}
		for i := shared; i < n; i++ {
			a = append(a, "a"+itoa(i))
			b = append(b, "b"+itoa(i))
		}
		exact := exactJaccard(a, b)
		est, err := Similarity(h.Sketch(a), h.Sketch(b))
		if err != nil {
			return false
		}
		return math.Abs(est-exact) <= 0.15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func TestMergeEqualsUnionSketch(t *testing.T) {
	h := MustHasher(128, 3)
	a := []string{"x", "y", "z"}
	b := []string{"z", "w", "v"}
	sa, sb := h.Sketch(a), h.Sketch(b)
	merged, err := Union(sa, sb)
	if err != nil {
		t.Fatal(err)
	}
	direct := h.Sketch(append(append([]string{}, a...), b...))
	for i := range merged {
		if merged[i] != direct[i] {
			t.Fatalf("merge differs from direct union sketch at %d", i)
		}
	}
}

func TestMergeAssociativeProperty(t *testing.T) {
	h := MustHasher(64, 11)
	f := func(xa, xb, xc uint16) bool {
		a := h.Sketch([]string{"a" + itoa(int(xa))})
		b := h.Sketch([]string{"b" + itoa(int(xb))})
		c := h.Sketch([]string{"c" + itoa(int(xc))})
		ab, _ := Union(a, b)
		abc1, _ := Union(ab, c)
		bc, _ := Union(b, c)
		abc2, _ := Union(a, bc)
		for i := range abc1 {
			if abc1[i] != abc2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSizeMismatch(t *testing.T) {
	a := MustHasher(64, 1).Sketch([]string{"a"})
	b := MustHasher(128, 1).Sketch([]string{"a"})
	if _, err := Similarity(a, b); err != ErrSizeMismatch {
		t.Fatalf("got %v, want ErrSizeMismatch", err)
	}
	if err := Merge(make(Signature, 64), a, b); err != ErrSizeMismatch {
		t.Fatalf("got %v, want ErrSizeMismatch", err)
	}
}

func TestEmptySignature(t *testing.T) {
	h := MustHasher(32, 1)
	s := h.NewSignature()
	if !s.Empty() {
		t.Fatal("fresh signature should be Empty")
	}
	h.Update(s, "x")
	if s.Empty() {
		t.Fatal("updated signature should not be Empty")
	}
}

func TestDistanceComplementsSimilarity(t *testing.T) {
	h := MustHasher(128, 9)
	a := h.Sketch([]string{"p", "q", "r"})
	b := h.Sketch([]string{"q", "r", "s"})
	sim, _ := Similarity(a, b)
	dist, _ := Distance(a, b)
	if math.Abs(sim+dist-1) > 1e-12 {
		t.Fatalf("sim %v + dist %v != 1", sim, dist)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	h := MustHasher(96, 21)
	s := h.Sketch([]string{"round", "trip"})
	got, err := FromBytes(s.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for i := range s {
		if got[i] != s[i] {
			t.Fatalf("round trip differs at %d", i)
		}
	}
	if _, err := FromBytes([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error for misaligned buffer")
	}
}

func TestSketchSetMatchesSketch(t *testing.T) {
	h := MustHasher(64, 5)
	set := map[string]struct{}{"a": {}, "b": {}, "c": {}}
	s1 := h.SketchSet(set)
	s2 := h.Sketch([]string{"a", "b", "c", "a"})
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("SketchSet differs from Sketch at %d", i)
		}
	}
}

func TestMulModAgainstBigBruteForce(t *testing.T) {
	// Verify mulmod against 128-bit arithmetic via math/bits-free check on
	// small operands where direct computation is exact.
	cases := [][2]uint64{
		{0, 0}, {1, 1}, {mersennePrime - 1, 2}, {mersennePrime - 1, mersennePrime - 1},
		{123456789, 987654321}, {1 << 60, 3}, {(1 << 60) + 12345, (1 << 59) + 678},
	}
	for _, c := range cases {
		got := mulmod(c[0], c[1])
		want := bigMulMod(c[0], c[1])
		if got != want {
			t.Fatalf("mulmod(%d,%d) = %d, want %d", c[0], c[1], got, want)
		}
	}
}

// bigMulMod computes (a*b) mod p by repeated addition-doubling (slow but
// obviously correct for testing).
func bigMulMod(a, b uint64) uint64 {
	var res uint64
	a %= mersennePrime
	for b > 0 {
		if b&1 == 1 {
			res = (res + a) % mersennePrime
		}
		a = (a * 2) % mersennePrime
		b >>= 1
	}
	return res
}

func TestMulModProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= mersennePrime
		b %= mersennePrime
		return mulmod(a, b) == bigMulMod(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSketch256(b *testing.B) {
	h := MustHasher(256, 1)
	elements := make([]string, 100)
	for i := range elements {
		elements[i] = "element-" + itoa(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Sketch(elements)
	}
}

func BenchmarkSimilarity256(b *testing.B) {
	h := MustHasher(256, 1)
	s1 := h.Sketch([]string{"a", "b", "c"})
	s2 := h.Sketch([]string{"b", "c", "d"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Similarity(s1, s2); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSignatureBinaryMarshalling(t *testing.T) {
	h := MustHasher(64, 99)
	sig := h.Sketch([]string{"blackfriars", "salford", "m3 6af"})
	buf, err := sig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Signature
	if err := got.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sig) {
		t.Fatalf("length %d != %d", len(got), len(sig))
	}
	for i := range sig {
		if got[i] != sig[i] {
			t.Fatalf("slot %d: %d != %d", i, got[i], sig[i])
		}
	}
	if err := got.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error for a 3-byte payload")
	}
}
