package tokenize

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzQGrams asserts the q-gram decomposition never panics and always
// honours its contract on arbitrary names and widths: grams are
// lower-case alphanumeric, at most q runes long, and deduplicated.
func FuzzQGrams(f *testing.F) {
	f.Add("Practice Name", 4)
	f.Add("", 4)
	f.Add("läkare-посткод", 3)
	f.Add("a", 0)
	f.Add("!!!", -7)
	f.Add(strings.Repeat("x", 500), 2)
	f.Add("\x80\xfe invalid utf8", 4)
	f.Fuzz(func(t *testing.T, name string, q int) {
		grams := QGrams(name, q)
		width := q
		if width <= 0 {
			width = DefaultQ
		}
		seen := make(map[string]struct{}, len(grams))
		for _, g := range grams {
			if g == "" {
				t.Fatalf("QGrams(%q, %d) produced an empty gram", name, q)
			}
			if utf8.RuneCountInString(g) > width && len(grams) != 1 {
				t.Fatalf("QGrams(%q, %d): gram %q longer than q", name, q, g)
			}
			for _, r := range g {
				if strings.ToLower(string(r)) != string(r) {
					t.Fatalf("QGrams(%q, %d): gram %q not lower-cased", name, q, g)
				}
			}
			if _, dup := seen[g]; dup {
				t.Fatalf("QGrams(%q, %d): duplicate gram %q", name, q, g)
			}
			seen[g] = struct{}{}
		}
	})
}

// FuzzTokens asserts the full value decomposition (parts, words,
// tokens) never panics and never emits empty or padded tokens.
func FuzzTokens(f *testing.F) {
	f.Add("69 Church St, Manchester, M26 2SP")
	f.Add("")
	f.Add("a,b;c:d/e|f(g)h[i]j{k}l\"m")
	f.Add("  \t\n  ")
	f.Add("price: £1,234.56 (incl. 20% VAT)")
	f.Add(strings.Repeat(",", 300))
	f.Add("\xff\xfe broken")
	f.Fuzz(func(t *testing.T, value string) {
		for _, p := range Parts(value) {
			if strings.TrimSpace(p) == "" {
				t.Fatalf("Parts(%q) produced a blank part", value)
			}
		}
		for _, w := range Tokens(value) {
			if w == "" {
				t.Fatalf("Tokens(%q) produced an empty token", value)
			}
			if w != strings.ToLower(w) {
				t.Fatalf("Tokens(%q): token %q not lower-cased", value, w)
			}
		}
	})
}

// FuzzHistogram exercises the histogram and the Example 2 per-part
// refinement over arbitrary extents: counts stay consistent and
// PartSignals only nominates words that exist in the value.
func FuzzHistogram(f *testing.F) {
	f.Add("51 Botanic Av, Belfast", "1a Chapel St, Salford")
	f.Add("", "")
	f.Add("x", strings.Repeat("y ", 200))
	f.Fuzz(func(t *testing.T, v1, v2 string) {
		h := NewHistogram()
		h.Insert(Tokens(v1))
		h.Insert(Tokens(v2))
		if h.Total() < 0 || h.Distinct() < 0 {
			t.Fatal("negative histogram counters")
		}
		nInfreq, nFreq := len(h.Infrequent()), len(h.Frequent())
		if nInfreq+nFreq != h.Distinct() {
			t.Fatalf("frequency split loses tokens: %d + %d != %d", nInfreq, nFreq, h.Distinct())
		}
		for _, v := range []string{v1, v2} {
			tsetWords, embedWords := h.PartSignals(v)
			valueWords := make(map[string]struct{})
			for _, w := range Tokens(v) {
				valueWords[w] = struct{}{}
			}
			for _, w := range append(append([]string{}, tsetWords...), embedWords...) {
				if _, ok := valueWords[w]; !ok {
					t.Fatalf("PartSignals(%q) nominated %q, not a word of the value", v, w)
				}
			}
		}
	})
}
