// Package tokenize implements the value decomposition of D3L's Section
// III-A: an attribute extent is construed as a set of documents (one per
// value), each document as a set of parts (split at punctuation), and
// each part as a set of words. A token-occurrence histogram over the
// extent splits tokens into infrequent ones (strong value-similarity
// signal, fed to the V evidence / tset) and frequent ones (domain-type
// indicators, fed to the word-embedding E evidence).
//
// It also provides the q-gram decomposition of attribute names used by
// the N evidence (q = 4 in the paper).
package tokenize

import (
	"strings"
	"unicode"
)

// DefaultQ is the q-gram width the paper selected for attribute names
// ("We have used q = 4").
const DefaultQ = 4

// QGrams returns the set of q-grams of the lower-cased, whitespace- and
// punctuation-stripped name. Names shorter than q yield a single gram
// with the whole residue, so short names still produce a signal.
func QGrams(name string, q int) []string {
	if q <= 0 {
		q = DefaultQ
	}
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(r)
		}
	}
	s := b.String()
	if s == "" {
		return nil
	}
	runes := []rune(s)
	if len(runes) <= q {
		return []string{s}
	}
	seen := make(map[string]struct{})
	grams := make([]string, 0, len(runes)-q+1)
	for i := 0; i+q <= len(runes); i++ {
		g := string(runes[i : i+q])
		if _, dup := seen[g]; !dup {
			seen[g] = struct{}{}
			grams = append(grams, g)
		}
	}
	return grams
}

// isPartSeparator reports punctuation that splits a value into parts
// (Example 2 splits an address value at commas).
func isPartSeparator(r rune) bool {
	switch r {
	case ',', ';', ':', '/', '|', '(', ')', '[', ']', '{', '}', '"':
		return true
	}
	return false
}

// isWordSeparator reports characters that split a part into words
// (spaces and residual punctuation: hyphens, dots, underscores,
// apostrophes).
func isWordSeparator(r rune) bool {
	return unicode.IsSpace(r) || r == '-' || r == '.' || r == '_' || r == '\''
}

// isTokenSeparator reports characters that end a token: both part and
// word separators, since a token boundary occurs at either level of
// the decomposition.
func isTokenSeparator(r rune) bool {
	return isPartSeparator(r) || isWordSeparator(r)
}

// appendFields appends the maximal separator-free substrings of s to
// dst — strings.FieldsFunc without its span bookkeeping allocations;
// the fields alias s.
func appendFields(dst []string, s string, sep func(rune) bool) []string {
	start := -1
	for i, r := range s {
		if sep(r) {
			if start >= 0 {
				dst = append(dst, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		dst = append(dst, s[start:])
	}
	return dst
}

// Parts splits a value into its parts at punctuation characters.
// Empty parts are dropped.
func Parts(value string) []string {
	parts := strings.FieldsFunc(value, isPartSeparator)
	out := parts[:0]
	for _, p := range parts {
		if strings.TrimSpace(p) != "" {
			out = append(out, strings.TrimSpace(p))
		}
	}
	return out
}

// Words splits a part into lower-cased words at spaces and residual
// punctuation (hyphens, dots), dropping empties.
func Words(part string) []string {
	fields := strings.FieldsFunc(strings.ToLower(part), isWordSeparator)
	out := fields[:0]
	for _, f := range fields {
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

// Tokens is the full decomposition of a value: all words of all parts
// (get_tokens(v) in Algorithm 1).
func Tokens(value string) []string {
	return TokensAppend(nil, value)
}

// TokensAppend is the allocation-conscious Tokens: it appends the
// decomposition to dst (a recycled buffer) and returns the extended
// slice. Tokens are substrings of the lower-cased value, so for
// already-lower-case input the only work is the scan itself.
//
// Equivalence with Tokens: lower-casing never maps a letter onto a
// separator (separators are fixed punctuation and whitespace), so
// lowering the whole value before splitting produces the same fields
// as splitting first and lowering each part; and splitting on the
// union of part and word separators yields exactly the words of the
// parts, in order.
func TokensAppend(dst []string, value string) []string {
	return appendFields(dst, strings.ToLower(value), isTokenSeparator)
}

// Histogram counts token occurrences across an attribute extent and
// splits the vocabulary into frequent and infrequent halves, mirroring
// the H.infrequent()/H.frequent() data structure of Algorithm 1.
type Histogram struct {
	counts map[string]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[string]int)}
}

// Insert folds the tokens of one value/document into the histogram.
func (h *Histogram) Insert(tokens []string) {
	for _, t := range tokens {
		h.counts[t]++
		h.total++
	}
}

// Count reports the occurrences of a token.
func (h *Histogram) Count(token string) int { return h.counts[token] }

// Distinct reports the vocabulary size.
func (h *Histogram) Distinct() int { return len(h.counts) }

// Total reports the total token occurrences.
func (h *Histogram) Total() int { return h.total }

// threshold is the frequency cut: tokens occurring strictly more often
// than the mean occurrence count are frequent. With a uniform vocabulary
// everything is infrequent, which matches the intuition that a column of
// unique values carries only value-level signal.
func (h *Histogram) threshold() float64 {
	if len(h.counts) == 0 {
		return 0
	}
	return float64(h.total) / float64(len(h.counts))
}

// Infrequent returns tokens at or below the mean occurrence count: the
// informative, TF/IDF-like carriers of value-level similarity that make
// up the tset T(a).
func (h *Histogram) Infrequent() []string {
	th := h.threshold()
	out := make([]string, 0, len(h.counts))
	for t, c := range h.counts {
		if float64(c) <= th {
			out = append(out, t)
		}
	}
	return out
}

// Frequent returns tokens strictly above the mean occurrence count:
// weak value-level signals but strong domain-type indicators ('street',
// 'road', postcode area prefixes, ...) whose embedding vectors feed ⃗a.
func (h *Histogram) Frequent() []string {
	th := h.threshold()
	var out []string
	for t, c := range h.counts {
		if float64(c) > th {
			out = append(out, t)
		}
	}
	return out
}

// IsFrequent reports whether a single token falls in the frequent half.
func (h *Histogram) IsFrequent(token string) bool {
	c, ok := h.counts[token]
	return ok && float64(c) > h.threshold()
}

// PartSignals applies the per-part refinement from Example 2 of the
// paper to one value: for every part, the part's rarest word (fewest
// occurrences in the extent) joins the tset, and the part's most common
// word is nominated for embedding. Ties break lexicographically for
// determinism. The histogram must already cover the whole extent.
func (h *Histogram) PartSignals(value string) (tsetWords, embedWords []string) {
	for _, part := range Parts(value) {
		words := Words(part)
		if len(words) == 0 {
			continue
		}
		// Pure-numeric words carry weak token-level signal (Section
		// III-C), so they only enter the tset when a part has nothing
		// else; Example 2 picks 'portland' and '3be', not the house
		// number.
		candidates := words
		if nonNum := filterNonNumeric(words); len(nonNum) > 0 {
			candidates = nonNum
		}
		rare := candidates[0]
		rareC := h.Count(candidates[0])
		for _, w := range candidates[1:] {
			c := h.Count(w)
			if c < rareC || (c == rareC && w < rare) {
				rare, rareC = w, c
			}
		}
		common := words[0]
		commonC := h.Count(words[0])
		for _, w := range words[1:] {
			c := h.Count(w)
			if c > commonC || (c == commonC && w < common) {
				common, commonC = w, c
			}
		}
		tsetWords = append(tsetWords, rare)
		embedWords = append(embedWords, common)
	}
	return tsetWords, embedWords
}

// filterNonNumeric drops words made entirely of digits.
func filterNonNumeric(words []string) []string {
	var out []string
	for _, w := range words {
		if !isNumericWord(w) {
			out = append(out, w)
		}
	}
	return out
}

// isNumericWord reports a word made entirely of digits.
func isNumericWord(w string) bool {
	for _, r := range w {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// SignalScratch carries the reusable buffers of PartSignalsScratch so
// the per-value refinement of a whole extent runs without per-value
// allocations. The zero value is ready.
type SignalScratch struct {
	parts  []string
	words  []string
	tset   []string
	embed  []string
	tokens []string
}

// TokensAppend decomposes a value into s.tokens (overwriting the
// previous call's result) — the buffer-reusing form profiling uses for
// the histogram pass.
func (s *SignalScratch) TokensAppend(value string) []string {
	s.tokens = TokensAppend(s.tokens[:0], value)
	return s.tokens
}

// PartSignalsScratch is PartSignals with every intermediate slice in
// the caller's scratch: it returns the same (tsetWords, embedWords)
// selection, valid until the next call on the same scratch, allocating
// only when the lower-cased value differs from the original (Go
// returns the input string unchanged when lowering is a no-op).
func (h *Histogram) PartSignalsScratch(value string, s *SignalScratch) (tsetWords, embedWords []string) {
	s.tset, s.embed = s.tset[:0], s.embed[:0]
	// Lower once up front: part separators are fixed punctuation, which
	// case mapping never produces, so part boundaries are unchanged and
	// each word equals the lowered word of the original part.
	lv := strings.ToLower(value)
	s.parts = appendFields(s.parts[:0], lv, isPartSeparator)
	for _, part := range s.parts {
		s.words = appendFields(s.words[:0], part, isWordSeparator)
		words := s.words
		if len(words) == 0 {
			continue
		}
		// Pure-numeric words carry weak token-level signal (Section
		// III-C), so they only feed the tset when a part has nothing
		// else. Instead of materialising the filtered slice, the rare
		// scan skips numeric words whenever any non-numeric word
		// exists — the same candidate sequence filterNonNumeric built.
		hasNonNum := false
		for _, w := range words {
			if !isNumericWord(w) {
				hasNonNum = true
				break
			}
		}
		var rare string
		rareC, started := 0, false
		for _, w := range words {
			if hasNonNum && isNumericWord(w) {
				continue
			}
			c := h.Count(w)
			if !started || c < rareC || (c == rareC && w < rare) {
				rare, rareC, started = w, c, true
			}
		}
		common, commonC := words[0], h.Count(words[0])
		for _, w := range words[1:] {
			c := h.Count(w)
			if c > commonC || (c == commonC && w < common) {
				common, commonC = w, c
			}
		}
		s.tset = append(s.tset, rare)
		s.embed = append(s.embed, common)
	}
	return s.tset, s.embed
}
