package tokenize

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestQGramsPaperExample(t *testing.T) {
	// Example 2: get_qgrams("Address") with q=4 -> {addr, ddre, dres, ress}.
	got := QGrams("Address", 4)
	want := []string{"addr", "ddre", "dres", "ress"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("QGrams(Address) = %v, want %v", got, want)
	}
}

func TestQGramsShortName(t *testing.T) {
	got := QGrams("GP", 4)
	if !reflect.DeepEqual(got, []string{"gp"}) {
		t.Fatalf("QGrams(GP) = %v, want [gp]", got)
	}
}

func TestQGramsStripsPunctuationAndCase(t *testing.T) {
	a := QGrams("Practice Name", 4)
	b := QGrams("practice_name", 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("case/punctuation should not matter: %v vs %v", a, b)
	}
}

func TestQGramsEmpty(t *testing.T) {
	if got := QGrams("", 4); got != nil {
		t.Fatalf("QGrams(\"\") = %v, want nil", got)
	}
	if got := QGrams("!!!", 4); got != nil {
		t.Fatalf("QGrams(punct-only) = %v, want nil", got)
	}
}

func TestQGramsDefaultQ(t *testing.T) {
	if !reflect.DeepEqual(QGrams("Address", 0), QGrams("Address", DefaultQ)) {
		t.Fatal("q<=0 should fall back to DefaultQ")
	}
}

func TestQGramsDeduplicates(t *testing.T) {
	got := QGrams("aaaaaa", 2)
	if !reflect.DeepEqual(got, []string{"aa"}) {
		t.Fatalf("QGrams(aaaaaa,2) = %v, want [aa]", got)
	}
}

func TestQGramsCountProperty(t *testing.T) {
	f := func(s string) bool {
		grams := QGrams(s, 4)
		seen := map[string]struct{}{}
		for _, g := range grams {
			if _, dup := seen[g]; dup {
				return false // must be a set
			}
			seen[g] = struct{}{}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPartsSplitsAtPunctuation(t *testing.T) {
	got := Parts("18 Portland Street, M1 3BE")
	want := []string{"18 Portland Street", "M1 3BE"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Parts = %v, want %v", got, want)
	}
}

func TestPartsDropsEmpties(t *testing.T) {
	got := Parts(",,a,,b,")
	want := []string{"a", "b"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Parts = %v, want %v", got, want)
	}
}

func TestWordsLowercasesAndSplits(t *testing.T) {
	got := Words("41 Oxford-Road")
	want := []string{"41", "oxford", "road"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Words = %v, want %v", got, want)
	}
}

func TestTokensWholeValue(t *testing.T) {
	got := Tokens("9 Mirabel Street, M3 1NN")
	want := []string{"9", "mirabel", "street", "m3", "1nn"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokens = %v, want %v", got, want)
	}
}

func extentHistogram(values []string) *Histogram {
	h := NewHistogram()
	for _, v := range values {
		h.Insert(Tokens(v))
	}
	return h
}

func TestHistogramFrequentInfrequentSplit(t *testing.T) {
	// 'street' occurs in every value; the street names occur once each.
	values := []string{
		"18 Portland Street", "41 Oxford Street", "9 Mirabel Street",
	}
	h := extentHistogram(values)
	if !h.IsFrequent("street") {
		t.Fatal("'street' should be frequent")
	}
	if h.IsFrequent("portland") {
		t.Fatal("'portland' should be infrequent")
	}
	inf := h.Infrequent()
	sort.Strings(inf)
	for _, w := range []string{"mirabel", "oxford", "portland"} {
		if sort.SearchStrings(inf, w) == len(inf) || inf[sort.SearchStrings(inf, w)] != w {
			t.Fatalf("infrequent set missing %q: %v", w, inf)
		}
	}
	freq := h.Frequent()
	if len(freq) != 1 || freq[0] != "street" {
		t.Fatalf("frequent set = %v, want [street]", freq)
	}
}

func TestHistogramPartitionProperty(t *testing.T) {
	// Frequent and Infrequent partition the vocabulary.
	f := func(tokens []string) bool {
		h := NewHistogram()
		h.Insert(tokens)
		freq := h.Frequent()
		inf := h.Infrequent()
		if len(freq)+len(inf) != h.Distinct() {
			return false
		}
		set := map[string]bool{}
		for _, w := range freq {
			set[w] = true
		}
		for _, w := range inf {
			if set[w] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramCounts(t *testing.T) {
	h := NewHistogram()
	h.Insert([]string{"a", "b", "a"})
	h.Insert([]string{"a"})
	if h.Count("a") != 3 || h.Count("b") != 1 || h.Count("zzz") != 0 {
		t.Fatalf("counts wrong: a=%d b=%d", h.Count("a"), h.Count("b"))
	}
	if h.Total() != 4 || h.Distinct() != 2 {
		t.Fatalf("total=%d distinct=%d", h.Total(), h.Distinct())
	}
}

func TestPartSignalsPaperExample(t *testing.T) {
	// Example 2 extent: street parts contribute their rare word to the
	// tset; the frequent 'street' words are nominated for embedding.
	values := []string{
		"18 Portland Street, M1 3BE",
		"41 Oxford Road, M13 9PL",
		"9 Mirabel Street, M3 1NN",
	}
	h := extentHistogram(values)
	tset, embed := h.PartSignals(values[0])
	foundPortland := false
	for _, w := range tset {
		if w == "portland" {
			foundPortland = true
		}
		if w == "street" {
			t.Fatal("'street' must not enter the tset (frequent)")
		}
	}
	if !foundPortland {
		t.Fatalf("tset %v should contain 'portland'", tset)
	}
	foundStreet := false
	for _, w := range embed {
		if w == "street" {
			foundStreet = true
		}
	}
	if !foundStreet {
		t.Fatalf("embedding nominations %v should contain 'street'", embed)
	}
}

func TestPartSignalsEmptyValue(t *testing.T) {
	h := NewHistogram()
	tset, embed := h.PartSignals("")
	if tset != nil || embed != nil {
		t.Fatal("empty value should produce no signals")
	}
}

func TestPartSignalsDeterministicTies(t *testing.T) {
	h := NewHistogram()
	h.Insert([]string{"alpha", "beta"})
	t1, e1 := h.PartSignals("alpha beta")
	t2, e2 := h.PartSignals("alpha beta")
	if !reflect.DeepEqual(t1, t2) || !reflect.DeepEqual(e1, e2) {
		t.Fatal("PartSignals should be deterministic")
	}
	if t1[0] != "alpha" { // lexicographic tie-break
		t.Fatalf("tie should break lexicographically, got %v", t1)
	}
}
