package embed

// builtinLexicon returns the default concept lexicon. Each group mirrors
// a distributional neighbourhood a corpus-trained model (fastText on
// Common Crawl) would learn for the vocabulary our generated data lakes
// draw on: domain-type indicator words (the frequent tokens Algorithm 1
// nominates for embedding) and common attribute-name words. The groups
// were chosen to cover the domains in internal/datagen; they are data,
// not tuning — adding a word only strengthens E-evidence for columns
// that genuinely share a domain.
func builtinLexicon() map[string]string {
	groups := map[string][]string{
		"healthcare-provider": {
			"gp", "doctor", "doctors", "practice", "practices", "surgery",
			"clinic", "clinics", "physician", "medical", "health",
			"healthcare", "hospital", "hospitals", "trust", "nhs", "care",
		},
		"street": {
			"street", "st", "road", "rd", "avenue", "ave", "av", "lane",
			"ln", "drive", "dr", "way", "close", "court", "crescent",
			"terrace", "grove", "place", "row", "walk", "hill",
		},
		"address": {
			"address", "addresses", "location", "premises", "site",
		},
		"settlement": {
			"city", "cities", "town", "towns", "borough", "village",
			"district", "municipality", "locality",
		},
		"region": {
			"county", "region", "province", "state", "area", "territory",
			"shire",
		},
		"postcode": {
			"postcode", "postcodes", "postal", "zip", "zipcode",
		},
		"person-name": {
			"name", "names", "surname", "forename", "firstname",
			"lastname", "title",
		},
		"organisation": {
			"company", "companies", "business", "businesses", "firm",
			"organisation", "organization", "enterprise", "employer",
			"agency", "provider", "supplier", "vendor",
		},
		"school": {
			"school", "schools", "college", "colleges", "academy",
			"university", "campus", "education",
		},
		"time-of-day": {
			"hours", "hour", "opening", "closing", "open", "closed",
			"schedule", "time", "times",
		},
		"date": {
			"date", "dates", "day", "month", "year", "years", "period",
			"quarter",
		},
		"money": {
			"payment", "payments", "funding", "cost", "costs", "price",
			"prices", "amount", "fee", "fees", "budget", "spend",
			"expenditure", "salary", "income", "revenue", "grant",
		},
		"count-of-people": {
			"patients", "people", "population", "residents", "pupils",
			"students", "employees", "staff", "headcount", "attendees",
		},
		"transport": {
			"station", "stations", "stop", "stops", "route", "routes",
			"line", "lines", "bus", "rail", "train", "transport",
		},
		"contact": {
			"phone", "telephone", "tel", "mobile", "email", "mail",
			"contact", "fax", "website", "url",
		},
		"identifier": {
			"id", "ids", "code", "codes", "reference", "ref", "number",
			"no", "key", "identifier",
		},
		"measure": {
			"rating", "score", "rank", "grade", "level", "index",
			"percentage", "percent", "rate", "ratio",
		},
		"country": {
			"country", "countries", "nation", "uk", "england", "scotland",
			"wales",
		},
		"vehicle": {
			"vehicle", "vehicles", "car", "cars", "van", "fleet",
			"registration",
		},
		"crime": {
			"crime", "crimes", "offence", "offences", "incident",
			"incidents", "police",
		},
		"property": {
			"property", "properties", "housing", "house", "dwelling",
			"building", "buildings", "land",
		},
		"weather": {
			"temperature", "rainfall", "weather", "climate", "humidity",
			"wind",
		},
	}
	lex := make(map[string]string)
	for concept, words := range groups {
		for _, w := range words {
			lex[w] = concept
		}
	}
	return lex
}
