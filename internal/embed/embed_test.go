package embed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWordDeterminism(t *testing.T) {
	m1 := NewModel(42)
	m2 := NewModel(42)
	a := m1.Word("manchester")
	b := m2.Word("manchester")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical vectors")
		}
	}
}

func TestWordUnitNorm(t *testing.T) {
	m := NewModel(1)
	for _, w := range []string{"street", "a", "blackfriars", "08:00"} {
		v := m.Word(w)
		var n float64
		for _, x := range v {
			n += x * x
		}
		if math.Abs(n-1) > 1e-9 {
			t.Fatalf("Word(%q) norm^2 = %v, want 1", w, n)
		}
	}
}

func TestEmptyWordIsZero(t *testing.T) {
	m := NewModel(1)
	if !IsZero(m.Word("")) || !IsZero(m.Word("   ")) {
		t.Fatal("empty word should embed to zero vector")
	}
}

func TestSynonymsCloserThanUnrelated(t *testing.T) {
	m := NewModel(7)
	doctor := m.Word("doctor")
	gp := m.Word("gp")
	practice := m.Word("practice")
	rainfall := m.Word("rainfall")
	if Cosine(doctor, gp) < 0.5 {
		t.Fatalf("doctor~gp cosine %v, want high (shared concept)", Cosine(doctor, gp))
	}
	if Cosine(doctor, practice) < 0.5 {
		t.Fatalf("doctor~practice cosine %v, want high", Cosine(doctor, practice))
	}
	if Cosine(doctor, rainfall) > 0.4 {
		t.Fatalf("doctor~rainfall cosine %v, want low", Cosine(doctor, rainfall))
	}
	if Cosine(doctor, gp) <= Cosine(doctor, rainfall) {
		t.Fatal("synonyms must be closer than unrelated words")
	}
}

func TestOrthographicSimilarityHelps(t *testing.T) {
	m := NewModel(7)
	a := m.Word("manchester")
	b := m.Word("manchestr") // typo shares most n-grams
	c := m.Word("xylophone")
	if Cosine(a, b) <= Cosine(a, c) {
		t.Fatalf("typo cosine %v should beat unrelated %v", Cosine(a, b), Cosine(a, c))
	}
	if Cosine(a, b) < 0.4 {
		t.Fatalf("typo cosine %v, want substantial subword sharing", Cosine(a, b))
	}
}

func TestCustomLexicon(t *testing.T) {
	m := NewModelWithLexicon(3, map[string]string{"Foo": "g1", "bar": "g1", "baz": "g2"})
	if Cosine(m.Word("foo"), m.Word("bar")) < 0.5 {
		t.Fatal("custom lexicon group should bind foo~bar")
	}
	if Cosine(m.Word("foo"), m.Word("baz")) > 0.6 {
		t.Fatal("different concepts should separate")
	}
}

func TestMeanOfWords(t *testing.T) {
	m := NewModel(5)
	mean := m.Mean([]string{"street", "road"})
	if IsZero(mean) {
		t.Fatal("mean of real words should be nonzero")
	}
	s := m.Word("street")
	if Cosine(mean, s) < 0.5 {
		t.Fatalf("mean should stay close to members, cosine %v", Cosine(mean, s))
	}
	if !IsZero(m.Mean(nil)) {
		t.Fatal("mean of no words should be zero")
	}
}

func TestCosineBounds(t *testing.T) {
	m := NewModel(11)
	f := func(a, b string) bool {
		va, vb := m.Word(a), m.Word(b)
		c := Cosine(va, vb)
		d := CosineDistance(va, vb)
		return c >= -1-1e-9 && c <= 1+1e-9 && d >= 0 && d <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCosineSelf(t *testing.T) {
	m := NewModel(2)
	v := m.Word("salford")
	if math.Abs(Cosine(v, v)-1) > 1e-9 {
		t.Fatal("self cosine should be 1")
	}
	if CosineDistance(v, v) > 1e-9 {
		t.Fatal("self cosine distance should be 0")
	}
}

func TestZeroVectorCosine(t *testing.T) {
	z := make([]float64, Dim)
	m := NewModel(2)
	if Cosine(z, m.Word("x")) != 0 {
		t.Fatal("zero vector cosine should be 0")
	}
	if CosineDistance(z, z) != 1 {
		t.Fatal("zero vector distance should be maximal (no evidence)")
	}
}

func TestAttributeLevelSemanticSignal(t *testing.T) {
	// Two attributes with different value domains but same semantics:
	// frequent tokens 'street','road' vs 'avenue','lane' should embed
	// closer than either is to money words. This is the paper's
	// motivation for E-relatedness.
	m := NewModel(9)
	addrA := m.Mean([]string{"street", "road"})
	addrB := m.Mean([]string{"avenue", "lane"})
	money := m.Mean([]string{"payment", "fee"})
	if Cosine(addrA, addrB) <= Cosine(addrA, money) {
		t.Fatalf("address~address %v should exceed address~money %v",
			Cosine(addrA, addrB), Cosine(addrA, money))
	}
}

func BenchmarkWord(b *testing.B) {
	m := NewModel(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Word("manchester")
	}
}
