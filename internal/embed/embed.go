// Package embed provides the word-embedding model (WEM) behind D3L's E
// evidence. The paper uses a pre-trained fastText model; that resource
// is unavailable offline, so this package implements the documented
// substitution (DESIGN.md §4.1): the fastText *architecture* — a word
// vector is the normalised sum of its character n-gram vectors — with
// deterministic pseudo-random n-gram vectors, plus a concept lexicon
// that pulls known synonym groups together the way distributional
// training would. Orthographically close words therefore share subword
// mass, and semantically related but lexically different words in the
// generated lakes share concept mass, exercising the same code paths as
// a real WEM: per-word vectors, per-attribute mean vectors, cosine
// distance, and random-projection indexing.
package embed

import (
	"math"
	"strings"
)

// Dim is the embedding dimensionality. fastText ships 300; 64 keeps the
// same behaviour at simulation scale.
const Dim = 64

// ngram width range, as in fastText's default subword setting (3..6,
// trimmed to 3..5 here for short tokens).
const (
	minGram = 3
	maxGram = 5
)

// conceptWeight balances subword evidence against lexicon concepts. A
// word in a synonym group points mostly at the shared concept vector,
// with a subword-dependent residual.
const conceptWeight = 0.8

// Model maps words to Dim-dimensional vectors. It is immutable after
// construction and safe for concurrent use.
type Model struct {
	seed    uint64
	concept map[string]string // word -> concept id
}

// NewModel builds a model with the built-in lexicon.
func NewModel(seed uint64) *Model {
	return &Model{seed: seed, concept: builtinLexicon()}
}

// NewModelWithLexicon builds a model with a caller-provided synonym
// lexicon mapping each word to a concept identifier. Words sharing a
// concept identifier embed close together.
func NewModelWithLexicon(seed uint64, lexicon map[string]string) *Model {
	c := make(map[string]string, len(lexicon))
	for w, g := range lexicon {
		c[strings.ToLower(w)] = g
	}
	return &Model{seed: seed, concept: c}
}

// Dim reports the vector dimensionality.
func (m *Model) Dim() int { return Dim }

// Word returns the embedding of a single word. The zero word yields a
// zero vector.
func (m *Model) Word(word string) []float64 {
	vec := make([]float64, Dim)
	w := strings.ToLower(strings.TrimSpace(word))
	if w == "" {
		return vec
	}
	// Subword component: mean of hashed character n-gram vectors over
	// the fastText-style padded token.
	padded := "<" + w + ">"
	runes := []rune(padded)
	count := 0
	for g := minGram; g <= maxGram; g++ {
		for i := 0; i+g <= len(runes); i++ {
			addHashedVector(vec, m.seed, string(runes[i:i+g]))
			count++
		}
	}
	if count == 0 {
		addHashedVector(vec, m.seed, padded)
		count = 1
	}
	for i := range vec {
		vec[i] /= float64(count)
	}
	normalize(vec)
	// Concept component: blend toward the shared concept vector.
	if concept, ok := m.concept[w]; ok {
		cvec := make([]float64, Dim)
		addHashedVector(cvec, m.seed^0x5bd1e995, "concept:"+concept)
		normalize(cvec)
		for i := range vec {
			vec[i] = conceptWeight*cvec[i] + (1-conceptWeight)*vec[i]
		}
		normalize(vec)
	}
	return vec
}

// Mean combines word vectors into one attribute vector (the paper
// combines the p-vectors of the nominated words into a p-vector for the
// whole attribute). Zero input yields a zero vector.
func (m *Model) Mean(words []string) []float64 {
	out := make([]float64, Dim)
	if len(words) == 0 {
		return out
	}
	for _, w := range words {
		wv := m.Word(w)
		for i := range out {
			out[i] += wv[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(words))
	}
	normalize(out)
	return out
}

// Cosine returns the cosine similarity of two vectors; zero vectors
// yield 0.
func Cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// CosineDistance returns 1 − cosine similarity clamped to [0, 1], the
// D_E distance of Section III-B.
func CosineDistance(a, b []float64) float64 {
	d := 1 - Cosine(a, b)
	if d < 0 {
		return 0
	}
	if d > 1 {
		return 1
	}
	return d
}

// IsZero reports whether a vector has no mass (no embeddable content).
func IsZero(v []float64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// addHashedVector accumulates the deterministic pseudo-random unit-less
// Gaussian-ish vector of key into vec. Components are derived from a
// SplitMix64 stream seeded by the key hash, mapped to [-1, 1).
func addHashedVector(vec []float64, seed uint64, key string) {
	h := seed
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211 // FNV prime
	}
	next := splitMix64(h)
	for i := range vec {
		// Uniform in [-1, 1): a fine stand-in for Gaussian components
		// given the downstream mean + normalise.
		u := float64(next()>>11) / (1 << 53)
		vec[i] += 2*u - 1
	}
}

func normalize(v []float64) {
	var n float64
	for _, x := range v {
		n += x * x
	}
	if n == 0 {
		return
	}
	n = math.Sqrt(n)
	for i := range v {
		v[i] /= n
	}
}

func splitMix64(seed uint64) func() uint64 {
	state := seed
	return func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}
