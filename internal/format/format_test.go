package format

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegexStringBasicClasses(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Portland", "C"},
		{"NHS", "U"},
		{"street", "L"},
		{"12345", "N"},
		{"-", "P"},
		{"", ""},
	}
	for _, c := range cases {
		if got := RegexString(c.in); got != c.want {
			t.Errorf("RegexString(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRegexStringAddress(t *testing.T) {
	// "18 Portland Street" -> N C C -> "NC+"
	if got := RegexString("18 Portland Street"); got != "NC+" {
		t.Fatalf("got %q, want NC+", got)
	}
}

func TestRegexStringPostcode(t *testing.T) {
	// "M1 3BE": M->U 1->N, 3->N BE->U  => U N N U -> "UN+U"
	if got := RegexString("M1 3BE"); got != "UN+U" {
		t.Fatalf("got %q, want UN+U", got)
	}
}

func TestRegexStringCollapse(t *testing.T) {
	// Repeated symbols collapse with '+'.
	got := RegexString("one two three")
	if got != "L+" {
		t.Fatalf("got %q, want L+", got)
	}
}

func TestRegexStringTimeRange(t *testing.T) {
	// "08:00-18:00" is one token: N P N P N P N ... with punctuation
	// separators; symbols alternate so no collapse of N P pairs. The
	// token has >3 symbols but contains P so it is not collapsed to A.
	got := RegexString("08:00-18:00")
	if !strings.ContainsRune(got, 'N') || !strings.ContainsRune(got, 'P') {
		t.Fatalf("time range lost structure: %q", got)
	}
}

func TestRegexStringMixedIdentifier(t *testing.T) {
	// Long alternating alphanumerics (no punctuation) collapse to A.
	got := RegexString("a1b2c3d4")
	if got != "A" {
		t.Fatalf("got %q, want A", got)
	}
}

func TestSameFormatDifferentValues(t *testing.T) {
	if RegexString("M1 3BE") != RegexString("M3 1NN") {
		t.Fatal("same-format postcodes should share a regex string")
	}
	if RegexString("08:00-18:00") != RegexString("07:00-20:00") {
		t.Fatal("same-format opening hours should share a regex string")
	}
}

func TestDifferentFormatsDiffer(t *testing.T) {
	if RegexString("Blackfriars") == RegexString("08:00-18:00") {
		t.Fatal("clearly different formats should not collide")
	}
}

func TestRSetDeduplicates(t *testing.T) {
	rs := RSet([]string{"M1 3BE", "M3 1NN", "W1G 6BW", ""})
	// Two distinct formats expected: "UN+U" and the W1G variant "UNU U N U"?
	// W1G -> U N U ; 6BW -> N U ; joined U N U N U -> "UNUNU".
	want := map[string]bool{"UN+U": true, "UNUNU": true}
	if len(rs) != 2 {
		t.Fatalf("RSet = %v, want 2 distinct formats", rs)
	}
	for _, r := range rs {
		if !want[r] {
			t.Fatalf("unexpected format %q in %v", r, rs)
		}
	}
}

func TestRegexStringDeterministicProperty(t *testing.T) {
	f := func(s string) bool { return RegexString(s) == RegexString(s) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegexStringAlphabetProperty(t *testing.T) {
	// Output only ever contains class symbols and '+'.
	valid := map[rune]bool{'C': true, 'U': true, 'L': true, 'N': true, 'A': true, 'P': true, '+': true}
	f := func(s string) bool {
		for _, r := range RegexString(s) {
			if !valid[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNoConsecutiveDuplicatesProperty(t *testing.T) {
	f := func(s string) bool {
		out := RegexString(s)
		var prev rune
		for _, r := range out {
			if r != '+' && r == prev {
				return false
			}
			if r != '+' {
				prev = r
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRSetEmptyInput(t *testing.T) {
	if got := RSet(nil); got != nil {
		t.Fatalf("RSet(nil) = %v, want nil", got)
	}
	if got := RSet([]string{"", "  "}); got != nil {
		t.Fatalf("RSet(blank) = %v, want nil", got)
	}
}

func TestClassifyDirect(t *testing.T) {
	cases := []struct {
		in   string
		want rune
	}{
		{"Hello", ClassC}, {"ABC", ClassU}, {"abc", ClassL},
		{"123", ClassN}, {"a1B2c3d4e5", ClassA}, {"..", ClassP}, {"", ClassP},
	}
	for _, c := range cases {
		if got := classify(c.in); got != c.want {
			t.Errorf("classify(%q) = %c, want %c", c.in, got, c.want)
		}
	}
}

func TestRegexStringsEqualForRenderedDates(t *testing.T) {
	dates := []string{"2020-11-20", "1999-01-02", "2026-06-12"}
	first := RegexString(dates[0])
	for _, d := range dates[1:] {
		if RegexString(d) != first {
			t.Fatalf("date formats differ: %q vs %q", RegexString(d), first)
		}
	}
	if !reflect.DeepEqual(RSet(dates), []string{first}) {
		t.Fatal("RSet of same-format dates should be a singleton")
	}
}
