// Package format derives the regular-expression representation of a
// value's format (the F evidence of D3L, Section III-A): each value is
// mapped to a string over the primitive lexical classes
//
//	C = [A-Z][a-z]+   capitalised word
//	U = [A-Z]+        upper-case run
//	L = [a-z]+        lower-case run
//	N = [0-9]+        digit run
//	A = [A-Za-z0-9]+  mixed alphanumeric run
//	P = punctuation (any character not caught above)
//
// with consecutive repetitions of a symbol collapsed to a single symbol
// followed by '+', e.g. the value "18 Portland Street, M1 3BE" maps to
// "N C+ P A+" style strings. The set of such strings over an extent is
// the rset R(a), compared by Jaccard distance via MinHash.
package format

import (
	"strings"
	"unicode"
)

// Class symbols, ordered as enumerated in the paper; when a token
// matches several primitive classes the first match wins.
const (
	ClassC = 'C'
	ClassU = 'U'
	ClassL = 'L'
	ClassN = 'N'
	ClassA = 'A'
	ClassP = 'P'
)

// classify maps a maximal homogeneous run to its primitive class.
func classify(run string) rune {
	if run == "" {
		return ClassP
	}
	hasUpper, hasLower, hasDigit, hasOther := false, false, false, false
	for _, r := range run {
		switch {
		case unicode.IsUpper(r):
			hasUpper = true
		case unicode.IsLower(r):
			hasLower = true
		case unicode.IsDigit(r):
			hasDigit = true
		default:
			hasOther = true
		}
	}
	switch {
	case hasOther:
		return ClassP
	case hasUpper && hasLower && !hasDigit:
		// C only when the run is exactly one capital followed by lower.
		runes := []rune(run)
		if unicode.IsUpper(runes[0]) && len(runes) > 1 {
			rest := true
			for _, r := range runes[1:] {
				if !unicode.IsLower(r) {
					rest = false
					break
				}
			}
			if rest {
				return ClassC
			}
		}
		return ClassA
	case hasUpper && !hasLower && !hasDigit:
		return ClassU
	case hasLower && !hasUpper && !hasDigit:
		return ClassL
	case hasDigit && !hasUpper && !hasLower:
		return ClassN
	default:
		return ClassA
	}
}

// tokenSymbols scans one whitespace-delimited token and emits its symbol
// string by segmenting it into runs: letters-with-case-structure,
// digits, and punctuation. A capitalised prefix followed by digits
// yields separate symbols (e.g. "M13" -> U N, matching the A-or-split
// treatment; we classify maximal same-category runs then join).
func tokenSymbols(token string) string {
	if token == "" {
		return ""
	}
	var symbols []rune
	runes := []rune(token)
	i := 0
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsUpper(r):
			// Consume the upper run, then an optional lower tail (C).
			j := i + 1
			for j < len(runes) && unicode.IsUpper(runes[j]) {
				j++
			}
			if j == i+1 { // single capital: maybe C with lower tail
				k := j
				for k < len(runes) && unicode.IsLower(runes[k]) {
					k++
				}
				if k > j {
					symbols = append(symbols, ClassC)
					i = k
					continue
				}
			}
			symbols = append(symbols, ClassU)
			i = j
		case unicode.IsLower(r):
			j := i + 1
			for j < len(runes) && unicode.IsLower(runes[j]) {
				j++
			}
			symbols = append(symbols, ClassL)
			i = j
		case unicode.IsDigit(r):
			j := i + 1
			for j < len(runes) && unicode.IsDigit(runes[j]) {
				j++
			}
			symbols = append(symbols, ClassN)
			i = j
		default:
			j := i + 1
			for j < len(runes) && !unicode.IsUpper(runes[j]) && !unicode.IsLower(runes[j]) && !unicode.IsDigit(runes[j]) {
				j++
			}
			symbols = append(symbols, ClassP)
			i = j
		}
	}
	// Mixed alphanumeric tokens with more than two alternations collapse
	// to A: they behave like identifiers (paper's A class), keeping rsets
	// crisp rather than noisy.
	if len(symbols) > 3 && !containsP(symbols) {
		return string(ClassA)
	}
	return string(symbols)
}

func containsP(symbols []rune) bool {
	for _, s := range symbols {
		if s == ClassP {
			return true
		}
	}
	return false
}

// RegexString maps a whole value to its format-describing string:
// per-token symbol strings joined in order, with consecutive identical
// symbols collapsed to the first occurrence followed by '+'.
func RegexString(value string) string {
	tokens := strings.Fields(value)
	if len(tokens) == 0 {
		return ""
	}
	var raw []rune
	for _, tok := range tokens {
		raw = append(raw, []rune(tokenSymbols(tok))...)
	}
	return collapse(raw)
}

// collapse rewrites runs of the same symbol as "X+".
func collapse(symbols []rune) string {
	var b strings.Builder
	i := 0
	for i < len(symbols) {
		b.WriteRune(symbols[i])
		j := i + 1
		for j < len(symbols) && symbols[j] == symbols[i] {
			j++
		}
		if j > i+1 {
			b.WriteByte('+')
		}
		i = j
	}
	return b.String()
}

// RSet computes the rset of an extent: the deduplicated set of regex
// strings of its values (the union in Algorithm 1, line 7).
func RSet(values []string) []string {
	seen := make(map[string]struct{})
	var out []string
	for _, v := range values {
		rs := RegexString(v)
		if rs == "" {
			continue
		}
		if _, dup := seen[rs]; !dup {
			seen[rs] = struct{}{}
			out = append(out, rs)
		}
	}
	return out
}
