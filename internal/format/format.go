// Package format derives the regular-expression representation of a
// value's format (the F evidence of D3L, Section III-A): each value is
// mapped to a string over the primitive lexical classes
//
//	C = [A-Z][a-z]+   capitalised word
//	U = [A-Z]+        upper-case run
//	L = [a-z]+        lower-case run
//	N = [0-9]+        digit run
//	A = [A-Za-z0-9]+  mixed alphanumeric run
//	P = punctuation (any character not caught above)
//
// with consecutive repetitions of a symbol collapsed to a single symbol
// followed by '+', e.g. the value "18 Portland Street, M1 3BE" maps to
// "N C+ P A+" style strings. The set of such strings over an extent is
// the rset R(a), compared by Jaccard distance via MinHash.
package format

import (
	"unicode"
	"unicode/utf8"
)

// Class symbols, ordered as enumerated in the paper; when a token
// matches several primitive classes the first match wins.
const (
	ClassC = 'C'
	ClassU = 'U'
	ClassL = 'L'
	ClassN = 'N'
	ClassA = 'A'
	ClassP = 'P'
)

// classify maps a maximal homogeneous run to its primitive class.
func classify(run string) rune {
	if run == "" {
		return ClassP
	}
	hasUpper, hasLower, hasDigit, hasOther := false, false, false, false
	for _, r := range run {
		switch {
		case unicode.IsUpper(r):
			hasUpper = true
		case unicode.IsLower(r):
			hasLower = true
		case unicode.IsDigit(r):
			hasDigit = true
		default:
			hasOther = true
		}
	}
	switch {
	case hasOther:
		return ClassP
	case hasUpper && hasLower && !hasDigit:
		// C only when the run is exactly one capital followed by lower.
		runes := []rune(run)
		if unicode.IsUpper(runes[0]) && len(runes) > 1 {
			rest := true
			for _, r := range runes[1:] {
				if !unicode.IsLower(r) {
					rest = false
					break
				}
			}
			if rest {
				return ClassC
			}
		}
		return ClassA
	case hasUpper && !hasLower && !hasDigit:
		return ClassU
	case hasLower && !hasUpper && !hasDigit:
		return ClassL
	case hasDigit && !hasUpper && !hasLower:
		return ClassN
	default:
		return ClassA
	}
}

// appendTokenSymbols scans one whitespace-delimited token and appends
// its symbol string to dst by segmenting it into runs: letters-with-
// case-structure, digits, and punctuation. A capitalised prefix
// followed by digits yields separate symbols (e.g. "M13" -> U N,
// matching the A-or-split treatment; we classify maximal same-category
// runs then join). Class symbols are ASCII, so the buffer is a plain
// byte slice the caller recycles — deriving a format string allocates
// nothing until a distinct rset entry is interned.
func appendTokenSymbols(dst []byte, token string) []byte {
	start := len(dst)
	i := 0
	for i < len(token) {
		r, sz := utf8.DecodeRuneInString(token[i:])
		switch {
		case unicode.IsUpper(r):
			// Consume the upper run, then an optional lower tail (C).
			j := i + sz
			single := true
			for j < len(token) {
				r2, sz2 := utf8.DecodeRuneInString(token[j:])
				if !unicode.IsUpper(r2) {
					break
				}
				j += sz2
				single = false
			}
			if single { // single capital: maybe C with lower tail
				k := j
				for k < len(token) {
					r2, sz2 := utf8.DecodeRuneInString(token[k:])
					if !unicode.IsLower(r2) {
						break
					}
					k += sz2
				}
				if k > j {
					dst = append(dst, ClassC)
					i = k
					continue
				}
			}
			dst = append(dst, ClassU)
			i = j
		case unicode.IsLower(r):
			j := i + sz
			for j < len(token) {
				r2, sz2 := utf8.DecodeRuneInString(token[j:])
				if !unicode.IsLower(r2) {
					break
				}
				j += sz2
			}
			dst = append(dst, ClassL)
			i = j
		case unicode.IsDigit(r):
			j := i + sz
			for j < len(token) {
				r2, sz2 := utf8.DecodeRuneInString(token[j:])
				if !unicode.IsDigit(r2) {
					break
				}
				j += sz2
			}
			dst = append(dst, ClassN)
			i = j
		default:
			j := i + sz
			for j < len(token) {
				r2, sz2 := utf8.DecodeRuneInString(token[j:])
				if unicode.IsUpper(r2) || unicode.IsLower(r2) || unicode.IsDigit(r2) {
					break
				}
				j += sz2
			}
			dst = append(dst, ClassP)
			i = j
		}
	}
	// Mixed alphanumeric tokens with more than two alternations collapse
	// to A: they behave like identifiers (paper's A class), keeping rsets
	// crisp rather than noisy.
	if len(dst)-start > 3 && !containsP(dst[start:]) {
		dst = append(dst[:start], ClassA)
	}
	return dst
}

func containsP(symbols []byte) bool {
	for _, s := range symbols {
		if s == ClassP {
			return true
		}
	}
	return false
}

// regexInto derives the format-describing byte string of a value using
// the two recycled buffers: sym accumulates the raw per-token symbols,
// out receives the collapsed form. It returns both buffers (possibly
// grown) with out holding the result.
func regexInto(value string, sym, out []byte) (symBuf, collapsed []byte) {
	sym = sym[:0]
	i := 0
	for i < len(value) {
		r, sz := utf8.DecodeRuneInString(value[i:])
		if unicode.IsSpace(r) {
			i += sz
			continue
		}
		j := i + sz
		for j < len(value) {
			r2, sz2 := utf8.DecodeRuneInString(value[j:])
			if unicode.IsSpace(r2) {
				break
			}
			j += sz2
		}
		sym = appendTokenSymbols(sym, value[i:j])
		i = j
	}
	// Collapse runs of the same symbol to "X+".
	out = out[:0]
	k := 0
	for k < len(sym) {
		out = append(out, sym[k])
		j := k + 1
		for j < len(sym) && sym[j] == sym[k] {
			j++
		}
		if j > k+1 {
			out = append(out, '+')
		}
		k = j
	}
	return sym, out
}

// RegexString maps a whole value to its format-describing string:
// per-token symbol strings joined in order, with consecutive identical
// symbols collapsed to the first occurrence followed by '+'.
func RegexString(value string) string {
	_, out := regexInto(value, nil, nil)
	return string(out)
}

// RSetScratch carries the reusable buffers of RSetAppend. The zero
// value is ready.
type RSetScratch struct {
	sym  []byte
	out  []byte
	seen map[string]struct{}
}

// RSetAppend is the allocation-conscious RSet: it appends the
// deduplicated regex strings of values to dst, reusing the scratch
// buffers, and interns a string only for each distinct format (the map
// membership probe on the byte buffer compiles to a no-allocation
// lookup).
func RSetAppend(dst []string, values []string, s *RSetScratch) []string {
	if s.seen == nil {
		s.seen = make(map[string]struct{})
	}
	clear(s.seen)
	for _, v := range values {
		s.sym, s.out = regexInto(v, s.sym, s.out)
		if len(s.out) == 0 {
			continue
		}
		if _, dup := s.seen[string(s.out)]; dup {
			continue
		}
		rs := string(s.out)
		s.seen[rs] = struct{}{}
		dst = append(dst, rs)
	}
	return dst
}

// RSet computes the rset of an extent: the deduplicated set of regex
// strings of its values (the union in Algorithm 1, line 7).
func RSet(values []string) []string {
	var s RSetScratch
	return RSetAppend(nil, values, &s)
}
