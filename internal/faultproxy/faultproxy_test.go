package faultproxy

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// backend returns a plain upstream answering 200 with a recognizable
// body.
func backend(t *testing.T) *httptest.Server {
	t.Helper()
	s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"ok":true,"padding":"0123456789012345678901234567890123456789"}`)
	}))
	t.Cleanup(s.Close)
	return s
}

func proxyFor(t *testing.T, target string, seed uint64) (*Proxy, *httptest.Server) {
	t.Helper()
	p, err := New(target, seed)
	if err != nil {
		t.Fatal(err)
	}
	s := httptest.NewServer(p)
	t.Cleanup(s.Close)
	return p, s
}

// TestForwardsCleanByDefault: zero rules pass every request through.
func TestForwardsCleanByDefault(t *testing.T) {
	up := backend(t)
	p, front := proxyFor(t, up.URL, 7)
	for i := 0; i < 10; i++ {
		resp, err := http.Get(front.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || !strings.Contains(string(body), `"ok":true`) {
			t.Fatalf("request %d: status %d body %q", i, resp.StatusCode, body)
		}
	}
	if st := p.Stats(); st.Forwarded != 10 || st.Errors+st.Resets+st.Truncated+st.Blackholes != 0 {
		t.Fatalf("stats diverge: %+v", st)
	}
}

// TestDeterministicSchedule: the same seed injects faults on the same
// request ordinals, run after run.
func TestDeterministicSchedule(t *testing.T) {
	up := backend(t)
	schedule := func(seed uint64) []bool {
		p, front := proxyFor(t, up.URL, seed)
		p.SetRules(Rules{ErrorProb: 0.5})
		var hits []bool
		for i := 0; i < 64; i++ {
			resp, err := http.Get(front.URL + "/x")
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			hits = append(hits, resp.StatusCode != 200)
		}
		return hits
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at request %d: %v vs %v", i, a, b)
		}
	}
	injected := 0
	for _, h := range a {
		if h {
			injected++
		}
	}
	if injected == 0 || injected == len(a) {
		t.Fatalf("p=0.5 injected %d/%d — draw stream looks degenerate", injected, len(a))
	}
	c := schedule(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

// TestInjectedError answers the configured status with a JSON body.
func TestInjectedError(t *testing.T) {
	up := backend(t)
	p, front := proxyFor(t, up.URL, 1)
	p.SetRules(Rules{ErrorProb: 1, ErrorStatus: 502})
	resp, err := http.Get(front.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 502 || !strings.Contains(string(body), "injected") {
		t.Fatalf("status %d body %q", resp.StatusCode, body)
	}
}

// TestReset: the client observes a transport-level failure, not an
// HTTP response.
func TestReset(t *testing.T) {
	up := backend(t)
	p, front := proxyFor(t, up.URL, 1)
	p.SetRules(Rules{ResetProb: 1})
	_, err := http.Get(front.URL + "/x")
	if err == nil {
		t.Fatal("reset produced a clean response")
	}
}

// TestTruncate: headers promise the full body, the wire carries half —
// the client sees an unexpected EOF mid-read.
func TestTruncate(t *testing.T) {
	up := backend(t)
	p, front := proxyFor(t, up.URL, 1)
	p.SetRules(Rules{TruncateProb: 1})
	resp, err := http.Get(front.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); err == nil {
		t.Fatal("truncated body read cleanly")
	}
}

// TestBlackhole: the request hangs until the client deadline fires.
func TestBlackhole(t *testing.T) {
	up := backend(t)
	p, front := proxyFor(t, up.URL, 1)
	p.SetRules(Rules{BlackholeProb: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, front.URL+"/x", nil)
	start := time.Now()
	_, err := http.DefaultClient.Do(req)
	if err == nil {
		t.Fatal("blackholed request answered")
	}
	if !errors.Is(err, context.DeadlineExceeded) && !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("expected deadline error, got %v", err)
	}
	if time.Since(start) < 90*time.Millisecond {
		t.Fatalf("blackhole answered early (%v)", time.Since(start))
	}
}

// TestLatency delays but still answers correctly.
func TestLatency(t *testing.T) {
	up := backend(t)
	p, front := proxyFor(t, up.URL, 1)
	p.SetRules(Rules{Latency: 80 * time.Millisecond, LatencyProb: 1})
	start := time.Now()
	resp, err := http.Get(front.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if time.Since(start) < 70*time.Millisecond {
		t.Fatalf("latency rule did not delay (%v)", time.Since(start))
	}
}

// TestControlSurface: rules flip over HTTP mid-run and stats render;
// the control paths are never fault-injected.
func TestControlSurface(t *testing.T) {
	up := backend(t)
	_, front := proxyFor(t, up.URL, 1)
	post := func(rules string) {
		t.Helper()
		resp, err := http.Post(front.URL+"/_fault/rules", "application/json", strings.NewReader(rules))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("rules POST status %d", resp.StatusCode)
		}
	}
	post(`{"errorProb":1}`)
	if resp, err := http.Get(front.URL + "/x"); err != nil || resp.StatusCode != 503 {
		t.Fatalf("armed rules not applied: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
	// Control stays reachable while faults are armed at p=1.
	resp, err := http.Get(front.URL + "/_fault/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Errors == 0 {
		t.Fatalf("stats missed the injected error: %+v", st)
	}
	post(`{}`)
	if resp, err := http.Get(front.URL + "/x"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("disarmed rules still injecting: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
}

// TestBadTarget rejects URLs a reverse proxy cannot use.
func TestBadTarget(t *testing.T) {
	for _, bad := range []string{"", "not a url", "127.0.0.1:8080"} {
		if _, err := New(bad, 1); err == nil {
			t.Fatalf("target %q accepted", bad)
		}
	}
}
