// Package faultproxy is a seed-deterministic fault-injecting HTTP
// reverse proxy, the chaos half of the coordinator's fault-tolerance
// test harness. Placed between a coordinator and a shard replica, it
// forwards requests verbatim until told otherwise, and injects —
// per-request, by deterministic coin flips from a seeded splitmix64
// stream — added latency, 5xx bursts, connection resets, truncated
// response bodies, and blackholes (accept, then never answer).
//
// Determinism: request i draws its fate from splitmix64(seed, i), so
// a given (seed, rules, request order) triple always injects the same
// fault schedule — a failing chaos run replays exactly. Rules swap
// atomically at any time (SetRules, or POST /_fault/rules when served
// over HTTP), which is how tests and the chaos-smoke script flap a
// replica mid-run.
//
// The /_fault/* control surface is handled by the proxy itself and is
// never fault-injected or forwarded: /_fault/rules (GET current
// rules, POST replacement), /_fault/stats (injection counters).
package faultproxy

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync/atomic"
	"time"
)

// Rules is one fault schedule. Probabilities are in [0,1] and drawn
// independently per request in a fixed order — blackhole, reset,
// error, truncate — so BlackholeProb=1 masks the rest; latency is
// orthogonal and applies before forwarding. The zero value forwards
// everything untouched.
type Rules struct {
	// Latency is added before forwarding when the LatencyProb draw
	// fires.
	Latency     time.Duration `json:"latency"`
	LatencyProb float64       `json:"latencyProb"`
	// ErrorProb answers ErrorStatus (default 503) with a JSON error
	// body instead of forwarding.
	ErrorProb   float64 `json:"errorProb"`
	ErrorStatus int     `json:"errorStatus"`
	// ResetProb hijacks the connection and closes it with SO_LINGER=0
	// — the client sees a TCP reset (or an abrupt EOF).
	ResetProb float64 `json:"resetProb"`
	// TruncateProb forwards the request but writes only half of the
	// response body under a full-length Content-Length, then closes —
	// the client sees an unexpected EOF mid-body.
	TruncateProb float64 `json:"truncateProb"`
	// BlackholeProb accepts the request and never answers: the
	// client hangs until its own deadline fires.
	BlackholeProb float64 `json:"blackholeProb"`
}

// Stats counts what the proxy did, for assertions and /_fault/stats.
type Stats struct {
	Forwarded  uint64 `json:"forwarded"`
	Latencies  uint64 `json:"latencies"`
	Errors     uint64 `json:"errors"`
	Resets     uint64 `json:"resets"`
	Truncated  uint64 `json:"truncated"`
	Blackholes uint64 `json:"blackholes"`
}

// Proxy is the fault-injecting reverse proxy; it implements
// http.Handler.
type Proxy struct {
	target *url.URL
	rp     *httputil.ReverseProxy
	seed   uint64
	seq    atomic.Uint64
	rules  atomic.Pointer[Rules]

	forwarded  atomic.Uint64
	latencies  atomic.Uint64
	errors     atomic.Uint64
	resets     atomic.Uint64
	truncated  atomic.Uint64
	blackholes atomic.Uint64
}

// New builds a proxy forwarding to target (a base URL such as
// "http://127.0.0.1:8191") with the given jitter seed and no faults
// armed.
func New(target string, seed uint64) (*Proxy, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, fmt.Errorf("faultproxy: bad target %q: %w", target, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("faultproxy: target %q needs a scheme and host", target)
	}
	p := &Proxy{target: u, seed: seed}
	p.rp = httputil.NewSingleHostReverseProxy(u)
	p.rp.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		// An unreachable backend answers 502 like any real proxy; the
		// coordinator classifies it as transient and fails over.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		fmt.Fprintf(w, `{"error":{"code":"bad_gateway","message":%q}}`, err.Error())
	}
	p.rules.Store(&Rules{})
	return p, nil
}

// SetRules atomically replaces the fault schedule.
func (p *Proxy) SetRules(r Rules) { p.rules.Store(&r) }

// Rules returns the current fault schedule.
func (p *Proxy) Rules() Rules { return *p.rules.Load() }

// Stats returns the injection counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Forwarded:  p.forwarded.Load(),
		Latencies:  p.latencies.Load(),
		Errors:     p.errors.Load(),
		Resets:     p.resets.Load(),
		Truncated:  p.truncated.Load(),
		Blackholes: p.blackholes.Load(),
	}
}

// Target returns the backend base URL.
func (p *Proxy) Target() string { return p.target.String() }

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/_fault/") {
		p.serveControl(w, r)
		return
	}
	rules := *p.rules.Load()
	i := p.seq.Add(1)
	draw := newDraw(p.seed, i)
	switch {
	case draw.hit(rules.BlackholeProb):
		p.blackholes.Add(1)
		// Drain the request body before parking: the net/http server
		// only watches for client disconnects once the body has been
		// consumed, and a blackhole must still observe the caller
		// giving up — otherwise Server.Close wedges on the parked
		// handler.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
		return
	case draw.hit(rules.ResetProb):
		p.resets.Add(1)
		p.reset(w)
		return
	case draw.hit(rules.ErrorProb):
		p.errors.Add(1)
		status := rules.ErrorStatus
		if status == 0 {
			status = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		fmt.Fprintf(w, `{"error":{"code":"injected","message":"faultproxy injected status %d"}}`, status)
		return
	case draw.hit(rules.TruncateProb):
		p.truncated.Add(1)
		p.truncate(w, r)
		return
	}
	if rules.Latency > 0 && draw.hit(rules.LatencyProb) {
		p.latencies.Add(1)
		select {
		case <-time.After(rules.Latency):
		case <-r.Context().Done():
			return
		}
	}
	p.forwarded.Add(1)
	p.rp.ServeHTTP(w, r)
}

// reset tears the client connection down as abruptly as the platform
// allows: SO_LINGER=0 turns the close into a TCP RST.
func (p *Proxy) reset(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		// Can't hijack (e.g. HTTP/2): an empty 502 is the closest
		// observable failure.
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	if tcp, ok := conn.(*net.TCPConn); ok {
		tcp.SetLinger(0)
	}
	conn.Close()
}

// truncate forwards the request upstream, then replays the response
// with a truthful Content-Length but only half the body before
// closing — the client reads an unexpected EOF mid-body, the
// truncated-response failure mode a crashing backend produces.
func (p *Proxy) truncate(w http.ResponseWriter, r *http.Request) {
	out, err := http.NewRequestWithContext(r.Context(), r.Method, p.target.ResolveReference(&url.URL{Path: r.URL.Path, RawQuery: r.URL.RawQuery}).String(), r.Body)
	if err != nil {
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	out.Header = r.Header.Clone()
	resp, err := http.DefaultTransport.RoundTrip(out)
	if err != nil {
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		// No hijack support: truncation degrades to a reset-like
		// abort (header says more bytes than we can ever send).
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	conn, buf, err := hj.Hijack()
	if err != nil {
		return
	}
	defer conn.Close()
	fmt.Fprintf(buf, "HTTP/1.1 %d %s\r\n", resp.StatusCode, http.StatusText(resp.StatusCode))
	fmt.Fprintf(buf, "Content-Type: %s\r\n", resp.Header.Get("Content-Type"))
	fmt.Fprintf(buf, "Content-Length: %d\r\n", len(body))
	fmt.Fprintf(buf, "Connection: close\r\n\r\n")
	buf.Write(body[:len(body)/2])
	buf.Flush()
}

func (p *Proxy) serveControl(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	switch {
	case r.URL.Path == "/_fault/rules" && r.Method == http.MethodGet:
		json.NewEncoder(w).Encode(p.Rules())
	case r.URL.Path == "/_fault/rules" && r.Method == http.MethodPost:
		var rules Rules
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&rules); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			fmt.Fprintf(w, `{"error":%q}`, err.Error())
			return
		}
		p.SetRules(rules)
		json.NewEncoder(w).Encode(rules)
	case r.URL.Path == "/_fault/stats" && r.Method == http.MethodGet:
		json.NewEncoder(w).Encode(p.Stats())
	default:
		w.WriteHeader(http.StatusNotFound)
		io.WriteString(w, `{"error":"unknown control endpoint"}`)
	}
}

// draw is one request's deterministic coin-flip stream.
type draw struct{ state uint64 }

// newDraw derives request i's stream from the proxy seed: two
// splitmix64 finalizer rounds separate the per-request streams enough
// that consecutive requests are uncorrelated.
func newDraw(seed, i uint64) *draw {
	return &draw{state: mix(mix(seed) ^ mix(i*0x9E3779B97F4A7C15))}
}

// hit draws uniform [0,1) and compares. Each call advances the
// stream, so the probabilities are independent in the documented
// order.
func (d *draw) hit(prob float64) bool {
	if prob <= 0 {
		return false
	}
	d.state += 0x9E3779B97F4A7C15
	u := float64(mix(d.state)>>11) / (1 << 53)
	return u < prob
}

func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
