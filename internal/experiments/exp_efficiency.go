package experiments

import (
	"fmt"
	"time"

	"d3l/internal/baselines/aurum"
	"d3l/internal/baselines/tus"
	"d3l/internal/core"
	"d3l/internal/datagen"
	"d3l/internal/mlearn"
	"d3l/internal/table"
)

func trainOpts() mlearn.Options { return mlearn.Options{Iterations: 150} }

// RunExp4 reproduces Experiment 4 / Figure 6a: time to create the
// indexes as the data lake grows, for D3L, TUS and Aurum, over samples
// of the LargerReal-like lake.
func RunExp4(scale Scale) (Report, error) {
	if len(scale.LargerSteps) == 0 {
		return Report{}, fmt.Errorf("exp4 needs LargerSteps")
	}
	maxTables := 0
	for _, n := range scale.LargerSteps {
		if n > maxTables {
			maxTables = n
		}
	}
	cfg := datagen.DefaultLargerConfig()
	cfg.Seed = scale.Seed + 7
	cfg.Tables = maxTables
	full, _, err := datagen.Larger(cfg)
	if err != nil {
		return Report{}, err
	}
	rep := Report{
		ID:     "exp4/fig6a",
		Title:  "Indexing time vs data lake size (LargerReal samples)",
		Note:   "scale=" + scale.Label,
		Header: []string{"tables", "attributes", "D3L", "TUS", "Aurum"},
	}
	for _, n := range scale.LargerSteps {
		sub := table.NewLake()
		attrs := 0
		for i := 0; i < n && i < full.Len(); i++ {
			if _, err := sub.Add(full.Table(i)); err != nil {
				return Report{}, err
			}
			attrs += full.Table(i).Arity()
		}
		d3lOpts := core.DefaultOptions()
		start := time.Now()
		if _, err := core.BuildEngine(sub, d3lOpts); err != nil {
			return Report{}, err
		}
		d3lDur := time.Since(start)

		start = time.Now()
		if _, err := tus.Build(sub, tus.DefaultOptions()); err != nil {
			return Report{}, err
		}
		tusDur := time.Since(start)

		start = time.Now()
		if _, err := aurum.Build(sub, aurum.DefaultOptions()); err != nil {
			return Report{}, err
		}
		aurumDur := time.Since(start)

		rep.Rows = append(rep.Rows, []string{
			itoa(n), itoa(attrs),
			d3lDur.Round(time.Millisecond).String(),
			tusDur.Round(time.Millisecond).String(),
			aurumDur.Round(time.Millisecond).String(),
		})
	}
	return rep, nil
}

// runSearchTime is the shared body of Experiments 5 and 6: mean query
// latency per answer size for D3L and TUS, plus Aurum's k-independent
// average reported once, as in the paper.
func runSearchTime(env *Env, id, title string) (Report, error) {
	rep := Report{
		ID:     id,
		Title:  title,
		Note:   "scale=" + env.Scale.Label + "; Aurum's query model is k-independent (single average)",
		Header: []string{"system", "k", "mean search time"},
	}
	d3lRun, err := env.d3lTopK()
	if err != nil {
		return Report{}, err
	}
	tusRun, err := env.tusTopK()
	if err != nil {
		return Report{}, err
	}
	for _, k := range env.Scale.SearchKs {
		d, err := env.timeSearch(d3lRun, k)
		if err != nil {
			return Report{}, err
		}
		rep.Rows = append(rep.Rows, []string{"D3L", itoa(k), d.Round(time.Microsecond).String()})
	}
	for _, k := range env.Scale.SearchKs {
		d, err := env.timeSearch(tusRun, k)
		if err != nil {
			return Report{}, err
		}
		rep.Rows = append(rep.Rows, []string{"TUS", itoa(k), d.Round(time.Microsecond).String()})
	}
	aurumRun, err := env.aurumTopK()
	if err != nil {
		return Report{}, err
	}
	maxK := env.Scale.SearchKs[len(env.Scale.SearchKs)-1]
	d, err := env.timeSearch(aurumRun, maxK)
	if err != nil {
		return Report{}, err
	}
	rep.Rows = append(rep.Rows, []string{"Aurum", "avg", d.Round(time.Microsecond).String()})
	return rep, nil
}

// RunExp5 reproduces Experiment 5 / Figure 6b: search time vs answer
// size on the Synthetic lake.
func RunExp5(env *Env) (Report, error) {
	if env.Kind != "synthetic" {
		return Report{}, fmt.Errorf("exp5 runs on the synthetic env, got %q", env.Kind)
	}
	return runSearchTime(env, "exp5/fig6b", "Search time vs answer size (Synthetic)")
}

// RunExp6 reproduces Experiment 6 / Figure 6c: search time vs answer
// size on the SmallerReal-like lake.
func RunExp6(env *Env) (Report, error) {
	if env.Kind != "real" {
		return Report{}, fmt.Errorf("exp6 runs on the real env, got %q", env.Kind)
	}
	return runSearchTime(env, "exp6/fig6c", "Search time vs answer size (SmallerReal)")
}

// RunExp7 reproduces Experiment 7 / Table II: index space overhead
// relative to repository size, per system, on both effectiveness lakes
// plus a LargerReal sample.
func RunExp7(synth, real *Env) (Report, error) {
	cfg := datagen.DefaultLargerConfig()
	cfg.Seed = synth.Scale.Seed + 9
	cfg.Tables = synth.Scale.LargerSteps[len(synth.Scale.LargerSteps)-1]
	larger, _, err := datagen.Larger(cfg)
	if err != nil {
		return Report{}, err
	}
	rep := Report{
		ID:     "exp7/tab2",
		Title:  "Space overhead of the indexes (% of repository size)",
		Note:   "scale=" + synth.Scale.Label,
		Header: []string{"system", "Synthetic", "SmallerReal", "LargerReal (sample)"},
	}
	type cell struct{ index, data int64 }
	overheads := map[string][3]cell{}
	envs := []struct {
		idx  int
		lake *table.Lake
	}{{0, synth.Lake}, {1, real.Lake}, {2, larger}}
	for _, le := range envs {
		d3lEng, err := core.BuildEngine(le.lake, core.DefaultOptions())
		if err != nil {
			return Report{}, err
		}
		tusSys, err := tus.Build(le.lake, tus.DefaultOptions())
		if err != nil {
			return Report{}, err
		}
		aurumSys, err := aurum.Build(le.lake, aurum.DefaultOptions())
		if err != nil {
			return Report{}, err
		}
		data := le.lake.DataBytes()
		for name, idx := range map[string]int64{
			"D3L":   d3lEng.IndexSpaceBytes(),
			"TUS":   tusSys.IndexSpaceBytes(),
			"Aurum": aurumSys.IndexSpaceBytes(),
		} {
			cells := overheads[name]
			cells[le.idx] = cell{index: idx, data: data}
			overheads[name] = cells
		}
	}
	for _, name := range []string{"D3L", "TUS", "Aurum"} {
		cells := overheads[name]
		row := []string{name}
		for _, c := range cells {
			pct := 0.0
			if c.data > 0 {
				pct = 100 * float64(c.index) / float64(c.data)
			}
			row = append(row, fmt.Sprintf("%.0f%%", pct))
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}
