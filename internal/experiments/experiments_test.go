package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"d3l/internal/datagen"
)

// tinyScale keeps integration tests fast.
func tinyScale() Scale {
	return Scale{
		Label:           "tiny",
		SyntheticBases:  6,
		SyntheticTables: 40,
		RealInstances:   2,
		RealTablesPer:   8,
		RealMinEntities: 30,
		RealMaxEntities: 60,
		Targets:         5,
		Ks:              []int{3, 6},
		JoinKs:          []int{3},
		LargerSteps:     []int{15, 30},
		SearchKs:        []int{3},
		Seed:            7,
		CandidateBudget: 48,
	}
}

func tinySynth(t testing.TB) *Env {
	t.Helper()
	env, err := NewSyntheticEnv(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func tinyReal(t testing.TB) *Env {
	t.Helper()
	env, err := NewRealEnv(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// generatedGT builds a small ground truth from the Synthetic generator
// (datagen keeps its constructor unexported; its own tests cover the
// mechanics — here we only need a known instance).
func generatedGT() *datagen.GroundTruth {
	cfg := datagen.DefaultSyntheticConfig()
	cfg.BaseTables, cfg.DerivedTables = 2, 6
	cfg.MinRows, cfg.MaxRows = 10, 15
	_, gt, err := datagen.Synthetic(cfg)
	if err != nil {
		panic(err)
	}
	return gt
}

func TestMetricsOnGeneratedGT(t *testing.T) {
	gt := generatedGT()
	tables := gt.Tables()
	var a, b, x string
	for _, ta := range tables {
		for _, tb := range tables {
			if ta != tb && gt.TablesRelated(ta, tb) {
				a, b = ta, tb
			}
		}
	}
	for _, tx := range tables {
		if a != "" && tx != a && !gt.TablesRelated(a, tx) {
			x = tx
		}
	}
	if a == "" || x == "" {
		t.Skip("generated GT lacks needed structure")
	}
	p, _ := precisionRecallAt(gt, a, []string{b, x})
	if p != 0.5 {
		t.Fatalf("precision %v, want 0.5", p)
	}
}

func TestRatio(t *testing.T) {
	if ratio(1, 0) != 0 || ratio(1, 2) != 0.5 {
		t.Fatal("ratio wrong")
	}
}

func TestReportString(t *testing.T) {
	rep := Report{
		ID:     "x",
		Title:  "demo",
		Note:   "note",
		Header: []string{"a", "bee"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	s := rep.String()
	for _, want := range []string{"== x: demo ==", "(note)", "bee", "333"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestFigure1FixtureAndTableI(t *testing.T) {
	lake, target, err := Figure1Fixture()
	if err != nil {
		t.Fatal(err)
	}
	if lake.Len() != 3 || target.Arity() != 5 {
		t.Fatal("fixture shape wrong")
	}
	rep, err := RunTableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("Table I has no rows")
	}
	// The (Practice, Practice) pair must show DN = 0.
	found := false
	for _, row := range rep.Rows {
		if row[0] == "(T.Practice, S2.Practice)" {
			found = true
			if row[1] != "0.00" {
				t.Fatalf("DN for identical names = %s, want 0.00", row[1])
			}
			if row[5] != "1.00" {
				t.Fatalf("DD for textual pair = %s, want 1.00", row[5])
			}
		}
	}
	if !found {
		t.Fatalf("no (T.Practice, S2.Practice) row: %v", rep.Rows)
	}
}

func TestFig2(t *testing.T) {
	synth := tinySynth(t)
	real := tinyReal(t)
	rep, err := RunFig2(synth, real)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("fig2 rows = %d, want 2", len(rep.Rows))
	}
}

func TestExp2ShapeD3LBeatsBaselines(t *testing.T) {
	env := tinySynth(t)
	rep, err := RunExp2(env)
	if err != nil {
		t.Fatal(err)
	}
	// Extract precision at the smallest k per system.
	prec := map[string]float64{}
	kMin := strconv.Itoa(env.Scale.Ks[0])
	for _, row := range rep.Rows {
		if row[1] == kMin {
			v, err := strconv.ParseFloat(row[2], 64)
			if err != nil {
				t.Fatal(err)
			}
			prec[row[0]] = v
		}
	}
	if prec["D3L"] < prec["TUS"] {
		t.Fatalf("D3L precision %v below TUS %v", prec["D3L"], prec["TUS"])
	}
	if prec["D3L"] < 0.5 {
		t.Fatalf("D3L precision %v too low at k=%s", prec["D3L"], kMin)
	}
	// Wrong env kind is rejected.
	if _, err := RunExp2(tinyReal(t)); err == nil {
		t.Fatal("exp2 should reject real env")
	}
}

func TestExp1IndividualVsCombined(t *testing.T) {
	env := tinyReal(t)
	rep, err := RunExp1(env)
	if err != nil {
		t.Fatal(err)
	}
	// Combined recall at max k should be at least the format-evidence
	// recall (aggregation helps; Fig 3).
	var combined, format float64
	kMax := strconv.Itoa(env.Scale.Ks[len(env.Scale.Ks)-1])
	for _, row := range rep.Rows {
		if row[1] != kMax {
			continue
		}
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		switch row[0] {
		case "combined":
			combined = v
		case "format":
			format = v
		}
	}
	if combined < format {
		t.Fatalf("combined recall %v below format-only %v", combined, format)
	}
	if _, err := RunExp1(tinySynth(t)); err == nil {
		t.Fatal("exp1 should reject synthetic env")
	}
}

func TestExp4IndexingTimes(t *testing.T) {
	rep, err := RunExp4(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("exp4 rows = %d, want one per step", len(rep.Rows))
	}
	if _, err := RunExp4(Scale{}); err == nil {
		t.Fatal("exp4 should reject empty steps")
	}
}

func TestExp5And6SearchTimes(t *testing.T) {
	synth := tinySynth(t)
	rep, err := RunExp5(synth)
	if err != nil {
		t.Fatal(err)
	}
	// D3L rows + TUS rows + one Aurum row.
	want := 2*len(synth.Scale.SearchKs) + 1
	if len(rep.Rows) != want {
		t.Fatalf("exp5 rows = %d, want %d", len(rep.Rows), want)
	}
	real := tinyReal(t)
	if _, err := RunExp6(real); err != nil {
		t.Fatal(err)
	}
	if _, err := RunExp5(real); err == nil {
		t.Fatal("exp5 should reject real env")
	}
	if _, err := RunExp6(synth); err == nil {
		t.Fatal("exp6 should reject synthetic env")
	}
}

func TestExp7SpaceOverhead(t *testing.T) {
	synth := tinySynth(t)
	real := tinyReal(t)
	rep, err := RunExp7(synth, real)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("exp7 rows = %d, want 3 systems", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		for _, cell := range row[1:] {
			if !strings.HasSuffix(cell, "%") {
				t.Fatalf("overhead cell %q not a percentage", cell)
			}
		}
	}
}

func TestExp8JoinCoverageGain(t *testing.T) {
	env := tinySynth(t)
	rep, err := RunExp8(env)
	if err != nil {
		t.Fatal(err)
	}
	cov := map[string]float64{}
	for _, row := range rep.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		cov[row[0]+"@"+row[1]] = v
	}
	k := strconv.Itoa(env.Scale.JoinKs[0])
	if cov["D3L+J@"+k] < cov["D3L@"+k] {
		t.Fatalf("D3L+J coverage %v below D3L %v", cov["D3L+J@"+k], cov["D3L@"+k])
	}
	if _, err := RunExp8(tinyReal(t)); err == nil {
		t.Fatal("exp8 should reject real env")
	}
}

func TestExp10And11OnReal(t *testing.T) {
	env := tinyReal(t)
	rep, err := RunExp10(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("exp10 empty")
	}
	rep, err = RunExp11(env)
	if err != nil {
		t.Fatal(err)
	}
	// D3L+J precision must not fall below D3L (paper: "the precision of
	// D3L+J does not descend below the original precision of D3L").
	prec := map[string]float64{}
	for _, row := range rep.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		prec[row[0]+"@"+row[1]] = v
	}
	k := strconv.Itoa(env.Scale.JoinKs[0])
	if prec["D3L+J@"+k]+0.15 < prec["D3L@"+k] {
		t.Fatalf("D3L+J attr precision %v far below D3L %v", prec["D3L+J@"+k], prec["D3L@"+k])
	}
	if _, err := RunExp10(tinySynth(t)); err == nil {
		t.Fatal("exp10 should reject synthetic env")
	}
	if _, err := RunExp11(tinySynth(t)); err == nil {
		t.Fatal("exp11 should reject synthetic env")
	}
}

func TestTrainedWeightsReport(t *testing.T) {
	env := tinySynth(t)
	rep, err := TrainedWeightsReport(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("weights rows = %d, want 5", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < 0 {
			t.Fatalf("weight %s negative", row[0])
		}
	}
}

func TestRunAllTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll takes several seconds")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf, tinyScale()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"fig2", "tab1", "exp1/fig3", "exp2/fig4", "exp3/fig5",
		"exp4/fig6a", "exp5/fig6b", "exp6/fig6c", "exp7/tab2",
		"exp8/fig7a", "exp9/fig7b", "exp10/fig8a", "exp11/fig8b", "weights"} {
		if !strings.Contains(out, "== "+id) {
			t.Fatalf("RunAll output missing %s", id)
		}
	}
}

func TestEnvBuildTimesRecorded(t *testing.T) {
	env := tinySynth(t)
	if _, err := env.D3L(); err != nil {
		t.Fatal(err)
	}
	if env.BuildTime["D3L"] <= 0 {
		t.Fatal("D3L build time not recorded")
	}
	// Cached on second call.
	e1, _ := env.D3L()
	e2, _ := env.D3L()
	if e1 != e2 {
		t.Fatal("engine should be cached")
	}
}
