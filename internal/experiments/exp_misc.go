package experiments

import (
	"fmt"
	"io"

	"d3l/internal/core"
	"d3l/internal/stats"
	"d3l/internal/table"
)

// RunFig2 reproduces Figure 2: arity, cardinality and data-type
// statistics of the two effectiveness repositories.
func RunFig2(synth, real *Env) (Report, error) {
	rep := Report{
		ID:     "fig2",
		Title:  "Repository statistics (arity, cardinality, data types)",
		Note:   "scale=" + synth.Scale.Label,
		Header: []string{"repository", "tables", "arity p50/p95", "cardinality p50/p95", "numeric attrs"},
	}
	for _, e := range []*Env{synth, real} {
		var arity, card []float64
		numeric, total := 0, 0
		for _, t := range e.Lake.Tables() {
			arity = append(arity, float64(t.Arity()))
			card = append(card, float64(t.Rows()))
			for _, c := range t.Columns {
				total++
				if c.Type == table.Numeric {
					numeric++
				}
			}
		}
		aSum, err := stats.Describe(arity)
		if err != nil {
			return Report{}, err
		}
		cSum, err := stats.Describe(card)
		if err != nil {
			return Report{}, err
		}
		rep.Rows = append(rep.Rows, []string{
			e.Kind,
			itoa(e.Lake.Len()),
			fmt.Sprintf("%.0f/%.0f", aSum.P50, aSum.P95),
			fmt.Sprintf("%.0f/%.0f", cSum.P50, cSum.P95),
			fmt.Sprintf("%.0f%%", 100*float64(numeric)/float64(total)),
		})
	}
	return rep, nil
}

// RunTableI reproduces Table I: the per-pair evidence distances between
// the paper's Figure 1 target T and source S2, computed by the real
// pipeline over the Figure 1 fixture tables.
func RunTableI() (Report, error) {
	lake, target, err := Figure1Fixture()
	if err != nil {
		return Report{}, err
	}
	opts := core.DefaultOptions()
	eng, err := core.BuildEngine(lake, opts)
	if err != nil {
		return Report{}, err
	}
	rows, err := eng.Explain(target, "S2")
	if err != nil {
		return Report{}, err
	}
	rep := Report{
		ID:     "tab1",
		Title:  "Example distances for T and S2 (Figure 1 fixture)",
		Note:   "computed, not hypothetical: expect DN=0 on identical names, DD=1 on textual pairs",
		Header: []string{"pair", "DN", "DV", "DF", "DE", "DD"},
	}
	for _, r := range rows {
		rep.Rows = append(rep.Rows, []string{
			"(T." + r.TargetColumn + ", S2." + r.SourceColumn + ")",
			f2(r.Distances[core.EvidenceName]),
			f2(r.Distances[core.EvidenceValue]),
			f2(r.Distances[core.EvidenceFormat]),
			f2(r.Distances[core.EvidenceEmbedding]),
			f2(r.Distances[core.EvidenceDomain]),
		})
	}
	return rep, nil
}

// Figure1Fixture builds the paper's Figure 1 tables: lake {S1, S2, S3}
// and target T. Shared by Table I, the quickstart example and tests.
func Figure1Fixture() (*table.Lake, *table.Table, error) {
	lake := table.NewLake()
	s1, err := table.New("S1",
		[]string{"Practice Name", "Address", "City", "Postcode", "Patients"},
		[][]string{
			{"Dr E Cullen", "51 Botanic Av", "Belfast", "BT7 1JL", "1202"},
			{"Blackfriars", "1a Chapel St", "Salford", "M3 6AF", "3572"},
			{"Radclife Care", "69 Church St", "Manchester", "M26 2SP", "2210"},
			{"Bolton Medical", "21 Rupert St", "Bolton", "BL3 6PY", "1894"},
		})
	if err != nil {
		return nil, nil, err
	}
	s2, err := table.New("S2",
		[]string{"Practice", "City", "Postcode", "Payment"},
		[][]string{
			{"The London Clinic", "London", "W1G 6BW", "73648"},
			{"Blackfriars", "Salford", "M3 6AF", "15530"},
			{"Radclife Care", "Manchester", "M26 2SP", "20081"},
			{"Bolton Medical", "Bolton", "BL3 6PY", "17264"},
		})
	if err != nil {
		return nil, nil, err
	}
	s3, err := table.New("S3",
		[]string{"GP", "Location", "Opening hours"},
		[][]string{
			{"Blackfriars", "Salford", "08:00-18:00"},
			{"Radclife Care", "-", "07:00-20:00"},
			{"Bolton Medical", "Bolton", "08:00-16:00"},
		})
	if err != nil {
		return nil, nil, err
	}
	for _, t := range []*table.Table{s1, s2, s3} {
		if _, err := lake.Add(t); err != nil {
			return nil, nil, err
		}
	}
	target, err := table.New("T",
		[]string{"Practice", "Street", "City", "Postcode", "Hours"},
		[][]string{
			{"Radclife", "69 Church St", "Manchester", "M26 2SP", "07:00-20:00"},
			{"Bolton Medical", "21 Rupert St", "Bolton", "BL3 6PY", "08:00-16:00"},
		})
	if err != nil {
		return nil, nil, err
	}
	return lake, target, nil
}

// RunAll executes every experiment at the given scale, writing each
// report to w as it completes. It is the `d3l exp all` entry point and
// the generator of EXPERIMENTS.md numbers.
func RunAll(w io.Writer, scale Scale) error {
	synth, err := NewSyntheticEnv(scale)
	if err != nil {
		return err
	}
	real, err := NewRealEnv(scale)
	if err != nil {
		return err
	}
	emit := func(rep Report, err error) error {
		if err != nil {
			return err
		}
		_, werr := fmt.Fprintln(w, rep.String())
		return werr
	}
	if err := emit(RunFig2(synth, real)); err != nil {
		return err
	}
	if err := emit(RunTableI()); err != nil {
		return err
	}
	if err := emit(RunExp1(real)); err != nil {
		return err
	}
	if err := emit(RunExp2(synth)); err != nil {
		return err
	}
	if err := emit(RunExp3(real)); err != nil {
		return err
	}
	if err := emit(RunExp4(scale)); err != nil {
		return err
	}
	if err := emit(RunExp5(synth)); err != nil {
		return err
	}
	if err := emit(RunExp6(real)); err != nil {
		return err
	}
	if err := emit(RunExp7(synth, real)); err != nil {
		return err
	}
	if err := emit(RunExp8(synth)); err != nil {
		return err
	}
	if err := emit(RunExp9(synth)); err != nil {
		return err
	}
	if err := emit(RunExp10(real)); err != nil {
		return err
	}
	if err := emit(RunExp11(real)); err != nil {
		return err
	}
	if err := emit(TrainedWeightsReport(synth)); err != nil {
		return err
	}
	return nil
}
