package experiments

import (
	"fmt"

	"d3l/internal/joins"
	"d3l/internal/table"
)

// joinMeasures holds one system's coverage and attribute precision at
// one k, averaged over targets (Eq. 4/5 averages, Section V-E).
type joinMeasures struct {
	coverage      float64
	attrPrecision float64
}

// measureD3L computes coverage and attribute precision for D3L with or
// without join augmentation.
func (e *Env) measureD3L(withJoins bool, k int) (joinMeasures, error) {
	eng, err := e.D3L()
	if err != nil {
		return joinMeasures{}, err
	}
	var graph *joins.Graph
	if withJoins {
		graph = joins.BuildGraph(eng, joins.DefaultGraphOptions())
	}
	var covSum, precSum float64
	nCov, nPrec := 0, 0
	for _, tname := range e.Targets {
		target, err := e.TargetTable(tname)
		if err != nil {
			return joinMeasures{}, err
		}
		res, err := eng.Search(target, k+1)
		if err != nil {
			return joinMeasures{}, err
		}
		// Drop the target itself from the answer.
		ranked := res.Ranked[:0:0]
		for _, r := range res.Ranked {
			if r.Name != tname {
				ranked = append(ranked, r)
			}
		}
		if len(ranked) > k {
			ranked = ranked[:k]
		}
		var pathsByStart map[int][]joins.Path
		if withJoins {
			topK := make([]int, len(ranked))
			for i, r := range ranked {
				topK[i] = r.TableID
			}
			pathsByStart = joins.FindJoinPaths(graph, topK, res.TargetProfiles, joins.DefaultPathOptions())
		}
		for _, r := range ranked {
			// Coverage (Eq. 4 / Eq. 5).
			if withJoins {
				covSum += joins.JoinCoverage(eng, res.TargetProfiles, r.TableID, pathsByStart[r.TableID])
			} else {
				covSum += joins.Coverage(eng, res.TargetProfiles, r.TableID)
			}
			nCov++
			// Attribute precision over system alignments.
			perTable := map[string]map[int][]int{}
			base := map[int][]int{}
			for _, a := range r.Alignments {
				base[a.TargetColumn] = append(base[a.TargetColumn], a.CandColumn)
			}
			perTable[r.Name] = base
			if withJoins {
				for _, p := range pathsByStart[r.TableID] {
					for _, tid := range p {
						if tid == r.TableID {
							continue
						}
						name := e.Lake.Table(tid).Name
						perTable[name] = eng.RelatedColumnPairs(tid, res.TargetProfiles)
					}
				}
			}
			tp, fp := joinedAttrPrecision(e.GT, tname, perTable)
			if tp+fp > 0 {
				precSum += ratio(tp, tp+fp)
				nPrec++
			}
		}
	}
	out := joinMeasures{}
	if nCov > 0 {
		out.coverage = covSum / float64(nCov)
	}
	if nPrec > 0 {
		out.attrPrecision = precSum / float64(nPrec)
	}
	return out, nil
}

// measureTUS computes coverage and attribute precision for TUS (which
// has no join variant — the paper notes TUS does not address
// joinability).
func (e *Env) measureTUS(k int) (joinMeasures, error) {
	run, err := e.tusTopK()
	if err != nil {
		return joinMeasures{}, err
	}
	return e.measureRankedAnswers(run, k, nil)
}

// measureAurum computes coverage and attribute precision for Aurum,
// optionally augmented with PK/FK join neighbours (Aurum+J).
func (e *Env) measureAurum(withJoins bool, k int) (joinMeasures, error) {
	run, err := e.aurumTopK()
	if err != nil {
		return joinMeasures{}, err
	}
	var expand func(target *table.Table, tableID int) map[string]map[int][]int
	if withJoins {
		sys, err := e.Aurum()
		if err != nil {
			return joinMeasures{}, err
		}
		expand = func(target *table.Table, tableID int) map[string]map[int][]int {
			out := map[string]map[int][]int{}
			for _, nb := range sys.JoinNeighbours(tableID) {
				if m := sys.ColumnMatches(target, nb); len(m) > 0 {
					out[e.Lake.Table(nb).Name] = m
				}
			}
			return out
		}
	}
	return e.measureRankedAnswers(run, k, expand)
}

// measureRankedAnswers scores a generic system: coverage is the
// fraction of target columns its alignments (plus any join expansion)
// claim to populate; attribute precision checks those claims against
// the ground truth.
func (e *Env) measureRankedAnswers(run topKFunc, k int, expand func(*table.Table, int) map[string]map[int][]int) (joinMeasures, error) {
	var covSum, precSum float64
	nCov, nPrec := 0, 0
	for _, tname := range e.Targets {
		target, err := e.TargetTable(tname)
		if err != nil {
			return joinMeasures{}, err
		}
		answers, err := run(target, k)
		if err != nil {
			return joinMeasures{}, err
		}
		for _, a := range answers {
			perTable := map[string]map[int][]int{a.name: a.aligns}
			if expand != nil {
				for name, m := range expand(target, a.tableID) {
					if name != a.name {
						perTable[name] = m
					}
				}
			}
			covered := map[int]bool{}
			for _, aligns := range perTable {
				for col := range aligns {
					covered[col] = true
				}
			}
			if target.Arity() > 0 {
				covSum += float64(len(covered)) / float64(target.Arity())
				nCov++
			}
			tp, fp := joinedAttrPrecision(e.GT, tname, perTable)
			if tp+fp > 0 {
				precSum += ratio(tp, tp+fp)
				nPrec++
			}
		}
	}
	out := joinMeasures{}
	if nCov > 0 {
		out.coverage = covSum / float64(nCov)
	}
	if nPrec > 0 {
		out.attrPrecision = precSum / float64(nPrec)
	}
	return out, nil
}

// runJoinExperiment is the shared body of Experiments 8–11.
func runJoinExperiment(env *Env, id, title string, wantCoverage bool) (Report, error) {
	header := []string{"system", "k"}
	if wantCoverage {
		header = append(header, "coverage")
	} else {
		header = append(header, "attr precision")
	}
	rep := Report{
		ID:     id,
		Title:  title,
		Note:   "scale=" + env.Scale.Label,
		Header: header,
	}
	type sys struct {
		label   string
		measure func(k int) (joinMeasures, error)
	}
	systems := []sys{
		{"D3L", func(k int) (joinMeasures, error) { return env.measureD3L(false, k) }},
		{"D3L+J", func(k int) (joinMeasures, error) { return env.measureD3L(true, k) }},
		{"TUS", env.measureTUS},
		{"Aurum", func(k int) (joinMeasures, error) { return env.measureAurum(false, k) }},
		{"Aurum+J", func(k int) (joinMeasures, error) { return env.measureAurum(true, k) }},
	}
	for _, s := range systems {
		for _, k := range env.Scale.JoinKs {
			m, err := s.measure(k)
			if err != nil {
				return Report{}, err
			}
			v := m.coverage
			if !wantCoverage {
				v = m.attrPrecision
			}
			rep.Rows = append(rep.Rows, []string{s.label, itoa(k), f3(v)})
		}
	}
	return rep, nil
}

// RunExp8 reproduces Experiment 8 / Figure 7a: target coverage on
// Synthetic with and without join augmentation.
func RunExp8(env *Env) (Report, error) {
	if env.Kind != "synthetic" {
		return Report{}, fmt.Errorf("exp8 runs on the synthetic env, got %q", env.Kind)
	}
	return runJoinExperiment(env, "exp8/fig7a", "Target coverage on Synthetic (±J)", true)
}

// RunExp9 reproduces Experiment 9 / Figure 7b: attribute precision on
// Synthetic with and without join augmentation.
func RunExp9(env *Env) (Report, error) {
	if env.Kind != "synthetic" {
		return Report{}, fmt.Errorf("exp9 runs on the synthetic env, got %q", env.Kind)
	}
	return runJoinExperiment(env, "exp9/fig7b", "Attribute precision on Synthetic (±J)", false)
}

// RunExp10 reproduces Experiment 10 / Figure 8a: target coverage on
// SmallerReal with and without join augmentation.
func RunExp10(env *Env) (Report, error) {
	if env.Kind != "real" {
		return Report{}, fmt.Errorf("exp10 runs on the real env, got %q", env.Kind)
	}
	return runJoinExperiment(env, "exp10/fig8a", "Target coverage on SmallerReal (±J)", true)
}

// RunExp11 reproduces Experiment 11 / Figure 8b: attribute precision on
// SmallerReal with and without join augmentation.
func RunExp11(env *Env) (Report, error) {
	if env.Kind != "real" {
		return Report{}, fmt.Errorf("exp11 runs on the real env, got %q", env.Kind)
	}
	return runJoinExperiment(env, "exp11/fig8b", "Attribute precision on SmallerReal (±J)", false)
}
