package experiments

import (
	"strconv"
	"testing"

	"d3l/internal/datagen"
)

func TestAblationWeighting(t *testing.T) {
	env := tinyReal(t)
	rep, err := RunAblationWeighting(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2*len(env.Scale.Ks) {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), 2*len(env.Scale.Ks))
	}
	// CCDF weighting should not be worse than uniform at the smallest k
	// by a wide margin (it is the paper's design choice).
	var ccdf, uniform float64
	k := strconv.Itoa(env.Scale.Ks[0])
	for _, row := range rep.Rows {
		if row[1] != k {
			continue
		}
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		switch row[0] {
		case "ccdf":
			ccdf = v
		case "uniform":
			uniform = v
		}
	}
	if ccdf+0.2 < uniform {
		t.Fatalf("ccdf precision %v far below uniform %v", ccdf, uniform)
	}
}

func TestAblationSampling(t *testing.T) {
	env := tinyReal(t)
	rep, err := RunAblationSampling(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 caps", len(rep.Rows))
	}
	if rep.Rows[0][0] != "full" {
		t.Fatalf("first row should be the full-extent run: %v", rep.Rows[0])
	}
}

func TestAblationEvidencePairs(t *testing.T) {
	env := tinyReal(t)
	rep, err := RunAblationEvidencePairs(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (full + 5 leave-one-out)", len(rep.Rows))
	}
}

func TestRunAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several engine builds")
	}
	env := tinyReal(t)
	reps, err := RunAblations(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("got %d reports, want 3", len(reps))
	}
}

func TestManualGroundTruth(t *testing.T) {
	gt := datagen.Manual(map[string][]string{
		"A": {"dom/x", "dom/y"},
		"B": {"dom/y"},
		"C": {"dom/z"},
	})
	if !gt.TablesRelated("A", "B") || gt.TablesRelated("A", "C") {
		t.Fatal("manual GT relations wrong")
	}
	if !gt.AttrsRelated("A", 1, "B", 0) {
		t.Fatal("manual GT attr relations wrong")
	}
	if gt.AvgAnswerSize() <= 0 {
		t.Fatal("avg answer size should be positive")
	}
}
