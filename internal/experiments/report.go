package experiments

import (
	"fmt"
	"strings"
)

// Report is a rendered experiment result: one table or one figure's
// series, in rows of strings ready for printing next to the paper.
type Report struct {
	ID    string // e.g. "exp2", "fig6a", "tab2"
	Title string
	// Note records caveats (scale, substitutions).
	Note   string
	Header []string
	Rows   [][]string
}

// String renders the report as an aligned text table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Note != "" {
		fmt.Fprintf(&b, "   (%s)\n", r.Note)
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for _, row := range r.Rows {
		writeRow(row)
	}
	return b.String()
}

// f2 formats a float with 2 decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f3 formats a float with 3 decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// ms formats a duration in milliseconds.
func ms(seconds float64) string { return fmt.Sprintf("%.1fms", seconds*1000) }

// itoa formats an int.
func itoa(i int) string { return fmt.Sprintf("%d", i) }
