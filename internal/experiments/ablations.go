package experiments

import (
	"fmt"
	"time"

	"d3l/internal/core"
)

// RunAblationWeighting isolates the contribution of the Eq. 2 CCDF
// weighting scheme (one of the design choices DESIGN.md calls out):
// the same engine configuration with and without distribution-aware
// weights, compared on precision/recall over the env targets.
func RunAblationWeighting(env *Env) (Report, error) {
	rep := Report{
		ID:     "abl-weighting",
		Title:  "Ablation: Eq. 2 CCDF weights vs uniform Eq. 1 weights",
		Note:   "scale=" + env.Scale.Label + ", env=" + env.Kind,
		Header: []string{"weighting", "k", "precision", "recall"},
	}
	for _, uniform := range []bool{false, true} {
		opts := env.d3lOptions()
		opts.UniformEq1Weights = uniform
		eng, err := core.BuildEngine(env.Lake, opts)
		if err != nil {
			return Report{}, err
		}
		run := engineTopK(eng)
		label := "ccdf"
		if uniform {
			label = "uniform"
		}
		for _, k := range env.Scale.Ks {
			pt, err := env.prOverTargets(run, k)
			if err != nil {
				return Report{}, err
			}
			rep.Rows = append(rep.Rows, []string{label, itoa(k), f3(pt.Precision), f3(pt.Recall)})
		}
	}
	return rep, nil
}

// RunAblationSampling isolates the extent-sampling design choice: the
// indexing cost and retrieval quality at different MaxExtentSample
// caps (0 = profile the full extent, as TUS does).
func RunAblationSampling(env *Env) (Report, error) {
	rep := Report{
		ID:     "abl-sampling",
		Title:  "Ablation: extent sampling cap vs indexing time and quality",
		Note:   "scale=" + env.Scale.Label + ", env=" + env.Kind,
		Header: []string{"cap", "index time", "precision@k", "recall@k"},
	}
	k := env.Scale.Ks[len(env.Scale.Ks)/2]
	for _, cap := range []int{0, 64, 256, 512} {
		opts := env.d3lOptions()
		opts.MaxExtentSample = cap
		start := time.Now()
		eng, err := core.BuildEngine(env.Lake, opts)
		if err != nil {
			return Report{}, err
		}
		dur := time.Since(start)
		pt, err := env.prOverTargets(engineTopK(eng), k)
		if err != nil {
			return Report{}, err
		}
		label := itoa(cap)
		if cap == 0 {
			label = "full"
		}
		rep.Rows = append(rep.Rows, []string{label, dur.Round(time.Millisecond).String(), f3(pt.Precision), f3(pt.Recall)})
	}
	return rep, nil
}

// RunAblationEvidencePairs measures leave-one-out evidence importance:
// the combined engine minus each single evidence type, quantifying what
// each contributes on top of the rest (complementing Exp 1's
// each-alone view).
func RunAblationEvidencePairs(env *Env) (Report, error) {
	rep := Report{
		ID:     "abl-leave-one-out",
		Title:  "Ablation: combined engine minus one evidence type",
		Note:   "scale=" + env.Scale.Label + ", env=" + env.Kind,
		Header: []string{"without", "k", "precision", "recall"},
	}
	k := env.Scale.Ks[len(env.Scale.Ks)/2]
	runs := []struct {
		label   string
		without core.Evidence
		none    bool
	}{
		{"nothing", 0, true},
		{"N", core.EvidenceName, false},
		{"V", core.EvidenceValue, false},
		{"F", core.EvidenceFormat, false},
		{"E", core.EvidenceEmbedding, false},
		{"D", core.EvidenceDomain, false},
	}
	for _, r := range runs {
		opts := env.d3lOptions()
		if !r.none {
			opts.Disabled[r.without] = true
		}
		eng, err := core.BuildEngine(env.Lake, opts)
		if err != nil {
			return Report{}, err
		}
		pt, err := env.prOverTargets(engineTopK(eng), k)
		if err != nil {
			return Report{}, err
		}
		rep.Rows = append(rep.Rows, []string{r.label, itoa(k), f3(pt.Precision), f3(pt.Recall)})
	}
	return rep, nil
}

// RunAblations executes all ablation studies.
func RunAblations(env *Env) ([]Report, error) {
	var out []Report
	for _, run := range []func(*Env) (Report, error){
		RunAblationWeighting, RunAblationSampling, RunAblationEvidencePairs,
	} {
		rep, err := run(env)
		if err != nil {
			return nil, fmt.Errorf("ablations: %w", err)
		}
		out = append(out, rep)
	}
	return out, nil
}
