// Package experiments is the evaluation harness: it rebuilds every
// table and figure of the paper's Section V against the generated lakes
// (see DESIGN.md §3 for the experiment index). Each RunExpN function
// returns a Report whose rows mirror the corresponding figure's series.
package experiments

import (
	"d3l/internal/datagen"
)

// PRPoint is one (k, precision, recall) measurement.
type PRPoint struct {
	K         int
	Precision float64
	Recall    float64
}

// precisionRecallAt computes P/R of a returned table-name list against
// the ground truth for one target, per the paper's TP/FP/FN definitions
// (a returned table is a TP iff it is related to the target).
func precisionRecallAt(gt *datagen.GroundTruth, target string, returned []string) (p, r float64) {
	related := make(map[string]bool)
	for _, name := range gt.RelatedTo(target) {
		related[name] = true
	}
	tp := 0
	for _, name := range returned {
		if related[name] {
			tp++
		}
	}
	if len(returned) > 0 {
		p = float64(tp) / float64(len(returned))
	}
	if len(related) > 0 {
		r = float64(tp) / float64(len(related))
	}
	return p, r
}

// meanPR averages P/R over targets for one system at one k.
func meanPR(gt *datagen.GroundTruth, results map[string][]string) (p, r float64) {
	if len(results) == 0 {
		return 0, 0
	}
	var sp, sr float64
	for target, returned := range results {
		tp, tr := precisionRecallAt(gt, target, returned)
		sp += tp
		sr += tr
	}
	n := float64(len(results))
	return sp / n, sr / n
}

// attrPrecision scores a set of alignments (target column -> candidate
// columns of candidate table) against the ground truth: a target column
// counts as a true positive when at least one aligned candidate column
// is genuinely related to it (Section V-E's definition).
func attrPrecision(gt *datagen.GroundTruth, target, candidate string, aligns map[int][]int) (tp, fp int) {
	for tCol, cCols := range aligns {
		hit := false
		for _, cCol := range cCols {
			if gt.AttrsRelated(target, tCol, candidate, cCol) {
				hit = true
				break
			}
		}
		if hit {
			tp++
		} else {
			fp++
		}
	}
	return tp, fp
}

// joinedAttrPrecision extends attrPrecision to a set of tables (a join
// path result): per target column, the union of aligned columns over
// all tables counts as one TP if any element is related.
func joinedAttrPrecision(gt *datagen.GroundTruth, target string, perTable map[string]map[int][]int) (tp, fp int) {
	byCol := make(map[int]bool) // target col -> any hit
	seenCol := make(map[int]bool)
	for candidate, aligns := range perTable {
		for tCol, cCols := range aligns {
			seenCol[tCol] = true
			for _, cCol := range cCols {
				if gt.AttrsRelated(target, tCol, candidate, cCol) {
					byCol[tCol] = true
					break
				}
			}
		}
	}
	for col := range seenCol {
		if byCol[col] {
			tp++
		} else {
			fp++
		}
	}
	return tp, fp
}

// ratio guards divide-by-zero.
func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
