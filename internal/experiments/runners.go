package experiments

import (
	"time"

	"d3l/internal/table"
)

// rankedAnswer is a system-agnostic top-k entry: the answer table name
// and the system's claimed alignments (target column -> columns).
type rankedAnswer struct {
	name    string
	tableID int
	aligns  map[int][]int
}

// topKFunc runs one system's query, excluding the target itself from
// the answer (targets are drawn from the lake, as in the paper).
type topKFunc func(target *table.Table, k int) ([]rankedAnswer, error)

// d3lTopK adapts the D3L engine.
func (e *Env) d3lTopK() (topKFunc, error) {
	eng, err := e.D3L()
	if err != nil {
		return nil, err
	}
	return func(target *table.Table, k int) ([]rankedAnswer, error) {
		res, err := eng.TopK(target, k+1)
		if err != nil {
			return nil, err
		}
		out := make([]rankedAnswer, 0, k)
		for _, r := range res {
			if r.Name == target.Name {
				continue
			}
			aligns := make(map[int][]int, len(r.Alignments))
			for _, a := range r.Alignments {
				aligns[a.TargetColumn] = append(aligns[a.TargetColumn], a.CandColumn)
			}
			out = append(out, rankedAnswer{name: r.Name, tableID: r.TableID, aligns: aligns})
			if len(out) == k {
				break
			}
		}
		return out, nil
	}, nil
}

// tusTopK adapts the TUS baseline.
func (e *Env) tusTopK() (topKFunc, error) {
	s, err := e.TUS()
	if err != nil {
		return nil, err
	}
	return func(target *table.Table, k int) ([]rankedAnswer, error) {
		res, err := s.TopK(target, k+1)
		if err != nil {
			return nil, err
		}
		out := make([]rankedAnswer, 0, k)
		for _, r := range res {
			if r.Name == target.Name {
				continue
			}
			out = append(out, rankedAnswer{name: r.Name, tableID: r.TableID, aligns: r.Alignments})
			if len(out) == k {
				break
			}
		}
		return out, nil
	}, nil
}

// aurumTopK adapts the Aurum baseline.
func (e *Env) aurumTopK() (topKFunc, error) {
	s, err := e.Aurum()
	if err != nil {
		return nil, err
	}
	return func(target *table.Table, k int) ([]rankedAnswer, error) {
		res, err := s.TopK(target, k+1)
		if err != nil {
			return nil, err
		}
		out := make([]rankedAnswer, 0, k)
		for _, r := range res {
			if r.Name == target.Name {
				continue
			}
			out = append(out, rankedAnswer{name: r.Name, tableID: r.TableID, aligns: r.Alignments})
			if len(out) == k {
				break
			}
		}
		return out, nil
	}, nil
}

// prOverTargets averages P/R over the env targets at one k.
func (e *Env) prOverTargets(run topKFunc, k int) (PRPoint, error) {
	results := make(map[string][]string, len(e.Targets))
	for _, tname := range e.Targets {
		target, err := e.TargetTable(tname)
		if err != nil {
			return PRPoint{}, err
		}
		answers, err := run(target, k)
		if err != nil {
			return PRPoint{}, err
		}
		names := make([]string, len(answers))
		for i, a := range answers {
			names[i] = a.name
		}
		results[tname] = names
	}
	p, r := meanPR(e.GT, results)
	return PRPoint{K: k, Precision: p, Recall: r}, nil
}

// timeSearch measures the mean per-target query latency at one k.
func (e *Env) timeSearch(run topKFunc, k int) (time.Duration, error) {
	var total time.Duration
	n := 0
	for _, tname := range e.Targets {
		target, err := e.TargetTable(tname)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := run(target, k); err != nil {
			return 0, err
		}
		total += time.Since(start)
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return total / time.Duration(n), nil
}
