package experiments

import (
	"fmt"
	"time"

	"d3l/internal/baselines/aurum"
	"d3l/internal/baselines/tus"
	"d3l/internal/core"
	"d3l/internal/datagen"
	"d3l/internal/table"
)

// Scale sizes an experiment run. SmallScale keeps the full pipeline
// under a few seconds for tests and quick benches; PaperScale
// approaches the paper's repository sizes (minutes of wall clock).
type Scale struct {
	Label string

	SyntheticBases  int
	SyntheticTables int

	RealInstances   int
	RealTablesPer   int
	RealMinEntities int
	RealMaxEntities int

	Targets int
	Ks      []int // answer sizes for effectiveness experiments
	JoinKs  []int // answer sizes for the join experiments

	LargerSteps     []int // lake sizes for the Experiment 4 sweep
	SearchKs        []int // answer sizes for the search-time sweeps
	Seed            uint64
	CandidateBudget int // caps per-attribute candidates in systems
}

// SmallScale returns the fast configuration used by tests and the
// default benchmark run.
func SmallScale() Scale {
	return Scale{
		Label:           "small",
		SyntheticBases:  8,
		SyntheticTables: 120,
		RealInstances:   4,
		RealTablesPer:   20,
		RealMinEntities: 50,
		RealMaxEntities: 120,
		Targets:         12,
		Ks:              []int{5, 10, 20, 40},
		JoinKs:          []int{5, 10, 20},
		LargerSteps:     []int{60, 120, 240},
		SearchKs:        []int{5, 10, 20, 40},
		Seed:            42,
		CandidateBudget: 96,
	}
}

// PaperScale approaches the paper's sizes (Synthetic ~5000 tables over
// 32 bases, SmallerReal ~700 tables, 100 targets). Expect minutes.
func PaperScale() Scale {
	return Scale{
		Label:           "paper",
		SyntheticBases:  32,
		SyntheticTables: 5000,
		RealInstances:   7,
		RealTablesPer:   100,
		RealMinEntities: 120,
		RealMaxEntities: 400,
		Targets:         100,
		Ks:              []int{5, 20, 50, 110, 170, 260, 350},
		JoinKs:          []int{5, 20, 50, 110},
		LargerSteps:     []int{500, 1000, 2000, 4000},
		SearchKs:        []int{10, 30, 50, 70, 90, 110},
		Seed:            42,
		CandidateBudget: 256,
	}
}

// Env is a generated lake with its ground truth, query targets, and
// lazily built systems (D3L and the two baselines), with build times
// recorded for the efficiency experiments.
type Env struct {
	Kind    string
	Scale   Scale
	Lake    *table.Lake
	GT      *datagen.GroundTruth
	Targets []string

	d3lEngine *core.Engine
	tusSystem *tus.System
	aurumSys  *aurum.System

	// BuildTime maps system name to indexing wall time.
	BuildTime map[string]time.Duration
}

// NewSyntheticEnv generates the Synthetic lake at the given scale.
func NewSyntheticEnv(s Scale) (*Env, error) {
	cfg := datagen.DefaultSyntheticConfig()
	cfg.Seed = s.Seed
	cfg.BaseTables = s.SyntheticBases
	cfg.DerivedTables = s.SyntheticTables
	lake, gt, err := datagen.Synthetic(cfg)
	if err != nil {
		return nil, err
	}
	return newEnv("synthetic", s, lake, gt), nil
}

// NewRealEnv generates the SmallerReal-like lake at the given scale.
func NewRealEnv(s Scale) (*Env, error) {
	cfg := datagen.DefaultRealConfig()
	cfg.Seed = s.Seed + 1
	cfg.ScenarioInstances = s.RealInstances
	cfg.TablesPerInstance = s.RealTablesPer
	cfg.MinEntities = s.RealMinEntities
	cfg.MaxEntities = s.RealMaxEntities
	lake, gt, err := datagen.Real(cfg)
	if err != nil {
		return nil, err
	}
	return newEnv("real", s, lake, gt), nil
}

func newEnv(kind string, s Scale, lake *table.Lake, gt *datagen.GroundTruth) *Env {
	return &Env{
		Kind:      kind,
		Scale:     s,
		Lake:      lake,
		GT:        gt,
		Targets:   datagen.PickTargets(lake, gt, s.Targets, s.Seed^0xfeed),
		BuildTime: make(map[string]time.Duration),
	}
}

// d3lOptions derives the engine options for this scale.
func (e *Env) d3lOptions() core.Options {
	opts := core.DefaultOptions()
	opts.CandidateBudget = e.Scale.CandidateBudget
	return opts
}

// D3L lazily builds (and times) the D3L engine.
func (e *Env) D3L() (*core.Engine, error) {
	if e.d3lEngine == nil {
		start := time.Now()
		eng, err := core.BuildEngine(e.Lake, e.d3lOptions())
		if err != nil {
			return nil, fmt.Errorf("building D3L: %w", err)
		}
		e.BuildTime["D3L"] = time.Since(start)
		e.d3lEngine = eng
	}
	return e.d3lEngine, nil
}

// TUS lazily builds (and times) the TUS baseline.
func (e *Env) TUS() (*tus.System, error) {
	if e.tusSystem == nil {
		opts := tus.DefaultOptions()
		opts.CandidateBudget = e.Scale.CandidateBudget
		start := time.Now()
		s, err := tus.Build(e.Lake, opts)
		if err != nil {
			return nil, fmt.Errorf("building TUS: %w", err)
		}
		e.BuildTime["TUS"] = time.Since(start)
		e.tusSystem = s
	}
	return e.tusSystem, nil
}

// Aurum lazily builds (and times) the Aurum baseline.
func (e *Env) Aurum() (*aurum.System, error) {
	if e.aurumSys == nil {
		opts := aurum.DefaultOptions()
		opts.CandidateBudget = e.Scale.CandidateBudget
		start := time.Now()
		s, err := aurum.Build(e.Lake, opts)
		if err != nil {
			return nil, fmt.Errorf("building Aurum: %w", err)
		}
		e.BuildTime["Aurum"] = time.Since(start)
		e.aurumSys = s
	}
	return e.aurumSys, nil
}

// TargetTable resolves a target name.
func (e *Env) TargetTable(name string) (*table.Table, error) {
	t := e.Lake.ByName(name)
	if t == nil {
		return nil, fmt.Errorf("target %q not in lake", name)
	}
	return t, nil
}
