package experiments

import (
	"fmt"
	"time"

	"d3l/internal/core"
	"d3l/internal/table"
)

// RunExp1 reproduces Experiment 1 / Figure 3: precision and recall of
// each evidence type individually, against the combined D3L, as the
// answer size grows — on the SmallerReal-like lake.
func RunExp1(env *Env) (Report, error) {
	if env.Kind != "real" {
		return Report{}, fmt.Errorf("exp1 runs on the real env, got %q", env.Kind)
	}
	type series struct {
		label    string
		disabled [core.NumEvidence]bool
	}
	all := func(except core.Evidence) [core.NumEvidence]bool {
		var d [core.NumEvidence]bool
		for i := 0; i < int(core.NumEvidence); i++ {
			d[i] = core.Evidence(i) != except
		}
		// D-relatedness is guarded by N/F lookups, so a D-only engine
		// would be inert; the paper's Fig. 3 likewise plots N, V, F, E.
		return d
	}
	runs := []series{
		{"name", all(core.EvidenceName)},
		{"value", all(core.EvidenceValue)},
		{"format", all(core.EvidenceFormat)},
		{"embedding", all(core.EvidenceEmbedding)},
		{"combined", [core.NumEvidence]bool{}},
	}
	rep := Report{
		ID:     "exp1/fig3",
		Title:  "Individual evidence precision and recall (SmallerReal)",
		Note:   "scale=" + env.Scale.Label,
		Header: []string{"evidence", "k", "precision", "recall"},
	}
	for _, s := range runs {
		opts := env.d3lOptions()
		opts.Disabled = s.disabled
		eng, err := core.BuildEngine(env.Lake, opts)
		if err != nil {
			return Report{}, err
		}
		run := engineTopK(eng)
		for _, k := range env.Scale.Ks {
			pt, err := env.prOverTargets(run, k)
			if err != nil {
				return Report{}, err
			}
			rep.Rows = append(rep.Rows, []string{s.label, itoa(k), f3(pt.Precision), f3(pt.Recall)})
		}
	}
	return rep, nil
}

// engineTopK adapts an ad-hoc engine (Exp 1 builds one per evidence).
func engineTopK(eng *core.Engine) topKFunc {
	return func(target *table.Table, k int) ([]rankedAnswer, error) {
		res, err := eng.TopK(target, k+1)
		if err != nil {
			return nil, err
		}
		out := make([]rankedAnswer, 0, k)
		for _, r := range res {
			if r.Name == target.Name {
				continue
			}
			aligns := make(map[int][]int, len(r.Alignments))
			for _, a := range r.Alignments {
				aligns[a.TargetColumn] = append(aligns[a.TargetColumn], a.CandColumn)
			}
			out = append(out, rankedAnswer{name: r.Name, tableID: r.TableID, aligns: aligns})
			if len(out) == k {
				break
			}
		}
		return out, nil
	}
}

// runComparativePR is the shared body of Experiments 2 and 3.
func runComparativePR(env *Env, id, title string) (Report, error) {
	rep := Report{
		ID:     id,
		Title:  title,
		Note:   "scale=" + env.Scale.Label,
		Header: []string{"system", "k", "precision", "recall"},
	}
	systems := []struct {
		label string
		mk    func() (topKFunc, error)
	}{
		{"D3L", env.d3lTopK},
		{"TUS", env.tusTopK},
		{"Aurum", env.aurumTopK},
	}
	for _, s := range systems {
		run, err := s.mk()
		if err != nil {
			return Report{}, err
		}
		for _, k := range env.Scale.Ks {
			pt, err := env.prOverTargets(run, k)
			if err != nil {
				return Report{}, err
			}
			rep.Rows = append(rep.Rows, []string{s.label, itoa(k), f3(pt.Precision), f3(pt.Recall)})
		}
	}
	return rep, nil
}

// RunExp2 reproduces Experiment 2 / Figure 4: comparative P/R on the
// Synthetic lake.
func RunExp2(env *Env) (Report, error) {
	if env.Kind != "synthetic" {
		return Report{}, fmt.Errorf("exp2 runs on the synthetic env, got %q", env.Kind)
	}
	return runComparativePR(env, "exp2/fig4", "Precision and recall on Synthetic (D3L vs TUS vs Aurum)")
}

// RunExp3 reproduces Experiment 3 / Figure 5: comparative P/R on the
// SmallerReal-like lake.
func RunExp3(env *Env) (Report, error) {
	if env.Kind != "real" {
		return Report{}, fmt.Errorf("exp3 runs on the real env, got %q", env.Kind)
	}
	return runComparativePR(env, "exp3/fig5", "Precision and recall on SmallerReal (D3L vs TUS vs Aurum)")
}

// TrainedWeightsReport fits the Eq. 3 weights on labelled pairs drawn
// from the env ground truth (the procedure of Section III-D) and
// reports the coefficients and classifier accuracy — the provenance of
// core.DefaultWeights.
func TrainedWeightsReport(env *Env) (Report, error) {
	eng, err := env.D3L()
	if err != nil {
		return Report{}, err
	}
	pairs, err := collectLabelledPairs(env, eng, 400)
	if err != nil {
		return Report{}, err
	}
	w, acc, err := core.TrainWeights(pairs, trainOpts())
	if err != nil {
		return Report{}, err
	}
	rep := Report{
		ID:     "weights",
		Title:  "Eq. 3 weights trained by coordinate-descent logistic regression",
		Note:   fmt.Sprintf("classifier accuracy %.2f over %d pairs", acc, len(pairs)),
		Header: []string{"evidence", "weight"},
	}
	for t := 0; t < int(core.NumEvidence); t++ {
		rep.Rows = append(rep.Rows, []string{core.Evidence(t).String(), f3(w[t])})
	}
	return rep, nil
}

// collectLabelledPairs builds Eq. 1 vectors for related and unrelated
// (target, candidate) pairs using the ground truth labels.
func collectLabelledPairs(env *Env, eng *core.Engine, maxPairs int) ([]core.LabelledPair, error) {
	var pairs []core.LabelledPair
	deadline := time.Now().Add(30 * time.Second)
	for _, tname := range env.Targets {
		if len(pairs) >= maxPairs || time.Now().After(deadline) {
			break
		}
		target, err := env.TargetTable(tname)
		if err != nil {
			return nil, err
		}
		res, err := eng.Search(target, 40)
		if err != nil {
			return nil, err
		}
		for _, r := range res.Ranked {
			if r.Name == tname {
				continue
			}
			pairs = append(pairs, core.LabelledPair{
				Vector:  r.Vector,
				Related: env.GT.TablesRelated(tname, r.Name),
			})
			if len(pairs) >= maxPairs {
				break
			}
		}
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("no labelled pairs collected")
	}
	return pairs, nil
}
