package d3l

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"d3l/internal/core"
	"d3l/internal/joins"
)

// This file is the unified, context-first query surface: one
// parameterised call — Query — covering what used to be four parallel
// entry points (TopK, BatchTopK, TopKWithJoins, Explain), exactly as
// the paper frames discovery as one parameterised query (evidence set,
// Eq. 3 weights, k, optional D3L+J augmentation). The legacy quartet
// remains as thin wrappers over Query with default options, so
// existing callers are untouched.
//
// Cancellation is cooperative and end-to-end: the ctx handed to Query
// is checked between candidate batches in the index fan-out, between
// table-scoring slots, between batch targets, and through join-graph
// construction and path traversal. A cancelled query returns ctx.Err()
// — never a partial answer — and releases its workers promptly, which
// is what lets the HTTP serving layer free a timed-out request's
// admission slot instead of carrying doomed work to completion.

// DefaultK is the answer size Query uses when no WithK option is
// given.
const DefaultK = 10

// ErrInvalidOptions reports a Query/QueryBatch call whose option set
// is malformed (negative k, empty evidence list, invalid weights, a
// combination that requests nothing, …). Every option-validation
// error wraps it, so serving layers can map the whole class onto a
// client error (400) with errors.Is instead of treating it as an
// engine failure.
var ErrInvalidOptions = errors.New("d3l: invalid query options")

// QueryOption configures one Query or QueryBatch call. Options never
// mutate engine state: two concurrent queries with different options
// cannot interfere.
type QueryOption func(*queryConfig)

type queryConfig struct {
	k           int
	kSet        bool
	joins       bool
	explainFor  string
	weights     *Weights
	disabled    *[NumEvidence]bool
	budget      int
	noPlanner   bool
	partialOK   bool
	parallelism int   // internal: QueryBatch pins inner queries to 1
	err         error // first option error, reported by Query
}

func (c *queryConfig) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// WithK sets the answer size. k = 0 requests no ranking at all — valid
// only together with WithExplainFor, for explanation-only queries that
// skip the top-k pipeline entirely. Negative k is an error.
func WithK(k int) QueryOption {
	return func(c *queryConfig) {
		if k < 0 {
			c.fail(fmt.Errorf("%w: k must be non-negative, got %d", ErrInvalidOptions, k))
			return
		}
		c.k = k
		c.kSet = true
	}
}

// WithJoins requests D3L+J augmentation (Section IV): the answer's
// Joins field carries SA-join paths and Eq. 4/5 coverage per ranked
// table. The join graph is an engine-level structure built from the
// engine's own evidence configuration, shared and cached across
// queries; per-query weights and evidence masks shape the ranking the
// paths start from, not the graph itself.
func WithJoins() QueryOption {
	return func(c *queryConfig) { c.joins = true }
}

// WithExplainFor requests the Table I-style pairwise distance rows
// between the target and the named lake table in the answer's
// Explanation field. The per-query evidence mask applies to the
// explanation distances too.
func WithExplainFor(name string) QueryOption {
	return func(c *queryConfig) {
		if name == "" {
			c.fail(fmt.Errorf("%w: WithExplainFor requires a table name", ErrInvalidOptions))
			return
		}
		c.explainFor = name
	}
}

// WithWeights replaces the engine's Eq. 3 evidence weights for this
// query only. The weights must validate (non-negative, not all zero).
func WithWeights(w Weights) QueryOption {
	return func(c *queryConfig) {
		if err := w.Validate(); err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrInvalidOptions, err))
			return
		}
		c.weights = &w
	}
}

// WithEvidence restricts this query to the given evidence types —
// e.g. WithEvidence(EvidenceName, EvidenceValue) runs a name+value-only
// unionability query against the same index. Unlisted evidence
// contributes distance 1 and weight 0, exactly like the engine-level
// ablation switches; evidence the engine itself disabled stays
// disabled. At least one type must be listed.
func WithEvidence(types ...Evidence) QueryOption {
	return func(c *queryConfig) {
		if len(types) == 0 {
			c.fail(fmt.Errorf("%w: WithEvidence requires at least one evidence type", ErrInvalidOptions))
			return
		}
		var disabled [NumEvidence]bool
		for i := range disabled {
			disabled[i] = true
		}
		for _, t := range types {
			if t < 0 || t >= NumEvidence {
				c.fail(fmt.Errorf("%w: unknown evidence type %d", ErrInvalidOptions, t))
				return
			}
			disabled[t] = false
		}
		c.disabled = &disabled
	}
}

// ParseEvidence resolves an evidence-type name — the long form
// ("name", "value", "format", "embedding", "domain") or the paper's
// single letter (N, V, F, E, D), case-insensitively — for WithEvidence
// callers that take evidence sets from flags or wire requests.
func ParseEvidence(name string) (Evidence, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "name", "n":
		return EvidenceName, nil
	case "value", "v":
		return EvidenceValue, nil
	case "format", "f":
		return EvidenceFormat, nil
	case "embedding", "e":
		return EvidenceEmbedding, nil
	case "domain", "d":
		return EvidenceDomain, nil
	default:
		return 0, fmt.Errorf("d3l: unknown evidence type %q (want name, value, format, embedding or domain)", name)
	}
}

// WithPlanner enables or disables the prepared-plan execution path —
// the cheapest-first evidence cascade with bound-based top-k pruning,
// the learned forest probe depths, and the prepared-plan cache. It is
// on by default; the answer is bit-identical either way (the planner
// only elides work whose outcome is already decided), so
// WithPlanner(false) exists as an escape hatch and as the A/B switch
// for measuring what the planner saves (compare Answer.Plan).
func WithPlanner(enabled bool) QueryOption {
	return func(c *queryConfig) { c.noPlanner = !enabled }
}

// WithPartialResults opts this query into the sharded coordinator's
// degraded mode: when a shard replica is unreachable after retries, the
// query is answered from the surviving shards and Answer.Degraded is
// set, instead of failing closed (the default). A degraded answer ranks
// only tables owned by the shards that responded. The option is inert
// on a monolithic engine and on in-process shard sets, which have no
// replicas to lose.
func WithPartialResults() QueryOption {
	return func(c *queryConfig) { c.partialOK = true }
}

// WithCandidateBudget caps the candidates gathered per target
// attribute per index for this query (0 keeps the engine default,
// which derives from k). Larger budgets trade latency for recall.
func WithCandidateBudget(n int) QueryOption {
	return func(c *queryConfig) {
		if n < 0 {
			c.fail(fmt.Errorf("%w: candidate budget must be non-negative, got %d", ErrInvalidOptions, n))
			return
		}
		c.budget = n
	}
}

func newQueryConfig(opts []QueryOption) (queryConfig, error) {
	cfg := queryConfig{k: DefaultK}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.err != nil {
		return cfg, cfg.err
	}
	if cfg.kSet && cfg.k == 0 {
		if cfg.explainFor == "" {
			return cfg, fmt.Errorf("%w: k is 0 and no explanation is requested; the query asks for nothing", ErrInvalidOptions)
		}
		if cfg.joins {
			return cfg, fmt.Errorf("%w: WithJoins requires a ranking; combine it with k > 0", ErrInvalidOptions)
		}
	}
	return cfg, nil
}

// QueryStats reports per-query work counters. CandidatePairs and
// TablesScored are deterministic (identical at any parallelism);
// Elapsed is wall-clock.
type QueryStats struct {
	// K is the effective answer size the query ran with.
	K int
	// CandidatePairs counts the (target column, candidate attribute)
	// distance vectors the index fan-out computed.
	CandidatePairs int
	// TablesScored counts candidate tables scored before the top-k
	// cut.
	TablesScored int
	// Elapsed is the end-to-end latency of the call.
	Elapsed time.Duration
}

// Answer is the result of one Query: the ranked tables, plus whatever
// optional sections the options requested.
type Answer struct {
	// Results is the ranked top-k answer (nil for explanation-only
	// queries issued with WithK(0)).
	Results []Result
	// Joins carries the D3L+J augmentation per ranked table; non-nil
	// only with WithJoins.
	Joins []Augmented
	// Explanation carries the Table I-style distance rows; non-nil
	// only with WithExplainFor.
	Explanation []PairExplanation
	// Stats summarises the work this query did.
	Stats QueryStats
	// Plan reports what the prepared-plan execution path did — the
	// evidence-cascade order, whether the plan was cached, and the
	// deterministic pruning counters. Zero for explanation-only queries
	// and under WithPlanner(false).
	Plan PlanStats
	// Degraded reports that a sharded query was answered from a subset
	// of its shards under the opt-in partial-failure policy. Monolith
	// answers and fully-healthy sharded answers always report false.
	Degraded bool
}

// Query answers one discovery query: the k most related lake tables
// for the target, optionally augmented with join paths (WithJoins) and
// a pairwise distance explanation (WithExplainFor), under per-query
// weights, evidence subset and candidate budget. With no options it is
// exactly TopK(target, DefaultK).
//
// ctx cancels cooperatively: the pipeline checks it between candidate
// batches and worker slots, and a cancelled query returns ctx.Err(),
// never a partial answer. Query is safe for concurrent use alongside
// mutations and other queries.
func (e *Engine) Query(ctx context.Context, target *Table, opts ...QueryOption) (*Answer, error) {
	cfg, err := newQueryConfig(opts)
	if err != nil {
		return nil, err
	}
	if cfg.joins {
		// Join-graph building and augmentation hold profile pointers
		// across many engine calls; the mutation lock (read mode) keeps
		// Add/Remove from interleaving, as in TopKWithJoins.
		e.mu.RLock()
		defer e.mu.RUnlock()
	}
	return e.query(ctx, target, cfg)
}

// query runs one configured query. When cfg.joins is set the caller
// must hold e.mu in read mode.
func (e *Engine) query(ctx context.Context, target *Table, cfg queryConfig) (*Answer, error) {
	if target == nil {
		return nil, fmt.Errorf("d3l: nil target")
	}
	if cfg.explainFor != "" && !e.core.HasTable(cfg.explainFor) {
		// Fail the whole query before any ranking work: an unknown
		// explanation target must not cost a full search per retry.
		// This is advisory (the table can vanish between here and the
		// explanation, which re-resolves under the query lock); it
		// mirrors core.ExplainSpec's own check-before-profiling rule.
		return nil, fmt.Errorf("%w: no table %q in the lake", ErrTableNotFound, cfg.explainFor)
	}
	start := time.Now()
	spec := core.QuerySpec{
		K:               cfg.k,
		Weights:         cfg.weights,
		Disabled:        cfg.disabled,
		CandidateBudget: cfg.budget,
		Parallelism:     cfg.parallelism,
		DisablePlanner:  cfg.noPlanner,
	}
	ans := &Answer{Stats: QueryStats{K: cfg.k}}
	var res *core.SearchResult
	if cfg.k > 0 {
		var err error
		res, err = e.core.SearchSpec(ctx, target, spec)
		if err != nil {
			return nil, err
		}
		ans.Results = res.Ranked
		ans.Stats.CandidatePairs = res.Stats.CandidatePairs
		ans.Stats.TablesScored = res.Stats.TablesScored
		ans.Plan = res.Plan
		if cfg.joins {
			g, err := e.joinGraphCtx(ctx)
			if err != nil {
				return nil, err
			}
			augs, err := joins.AugmentCtx(ctx, e.core, g, res, joins.DefaultPathOptions())
			if err != nil {
				return nil, err
			}
			ans.Joins = augs
		}
	}
	if cfg.explainFor != "" {
		var rows []PairExplanation
		var err error
		if res != nil {
			// The ranking already profiled the target; reuse it.
			rows, err = e.core.ExplainProfiled(ctx, target, res.TargetProfiles, res.TargetSubject, cfg.explainFor, spec)
		} else {
			rows, err = e.core.ExplainSpec(ctx, target, cfg.explainFor, spec)
		}
		if err != nil {
			return nil, err
		}
		ans.Explanation = rows
	}
	ans.Stats.Elapsed = time.Since(start)
	return ans, nil
}

// QueryBatch answers one Query per target concurrently across the
// engine's worker pool — the high-throughput serving primitive. All
// targets share one option set; the answer slice is indexed like
// targets. Cancellation wins over per-target failures: once ctx is
// cancelled, workers stop picking up targets and the call returns
// ctx.Err(); otherwise the first query error aborts the batch. With
// WithJoins, the SA-join graph is built (or reused) once and shared by
// every answer.
func (e *Engine) QueryBatch(ctx context.Context, targets []*Table, opts ...QueryOption) ([]*Answer, error) {
	cfg, err := newQueryConfig(opts)
	if err != nil {
		return nil, err
	}
	if cfg.joins {
		e.mu.RLock()
		defer e.mu.RUnlock()
		// Build the shared graph up front: pool workers would otherwise
		// race duplicate builds of the same graph.
		if _, err := e.joinGraphCtx(ctx); err != nil {
			return nil, err
		}
	}
	// Each query runs its own pipeline sequentially; cross-target
	// parallelism already saturates the pool.
	inner := cfg
	inner.parallelism = 1
	answers := make([]*Answer, len(targets))
	errs := make([]error, len(targets))
	if err := e.core.ForEachQuery(ctx, len(targets), func(i int) {
		a, err := e.query(ctx, targets[i], inner)
		if err != nil {
			errs[i] = fmt.Errorf("target %d: %w", i, err)
			return
		}
		answers[i] = a
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return answers, nil
}
