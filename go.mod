module d3l

go 1.23
